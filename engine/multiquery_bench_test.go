package engine

import (
	"fmt"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// multiQueryCap bounds the O(views) configurations: disjoint overlap and
// the unshared (independent) baseline each run one physical tree per
// view, so per-op work grows linearly with the view count and 1k/10k
// rows would measure nothing but that linearity at prohibitive cost.
// Shared configurations (identical, mixed) run the full ladder — holding
// per-element cost flat as views grow is exactly what they demonstrate.
const multiQueryCap = 100

// BenchmarkMultiQuery measures shared-subplan execution as the number of
// registered views grows. Overlap shapes:
//
//   - identical: every view has the same fingerprint → one physical tree,
//     O(views) fan-out. The acceptance row: 1k identical views must stay
//     within 2x the single-view ingest rate.
//   - mixed: views spread over 10 share groups (ShareTag i%10) → 10 trees.
//   - disjoint: every view carries a unique ShareTag → views trees, the
//     sharing machinery with zero overlap (capped, see multiQueryCap).
//   - independent: Share=false baseline, one tree per view on the
//     pre-sharing registration path (capped, see multiQueryCap).
func BenchmarkMultiQuery(b *testing.B) {
	const items = 100
	const bids = 4
	var feed []TaggedElement
	for i := 0; i < items; i++ {
		feed = append(feed, auctionElems(int64(i), bids)...)
	}

	run := func(b *testing.B, views, groups int, share bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := New()
			d.RegisterScheme(stream.MustScheme("item", false, true, false, false))
			d.RegisterScheme(stream.MustScheme("bid", false, true, false))
			regs := make([]*Registered, views)
			for v := 0; v < views; v++ {
				opts := Options{Share: share}
				if share && groups > 1 {
					opts.ShareTag = fmt.Sprintf("g%d", v%groups)
				}
				reg, err := d.Register(fmt.Sprintf("view%d", v), workload.AuctionQuery(), opts)
				if err != nil {
					b.Fatal(err)
				}
				regs[v] = reg
			}
			wantTrees := views
			if share {
				wantTrees = groups
				if views < groups {
					wantTrees = views
				}
			}
			if got := d.PhysicalTrees(); got != wantTrees {
				b.Fatalf("PhysicalTrees = %d, want %d", got, wantTrees)
			}
			b.StartTimer()
			rt := d.RunSharded(RuntimeOptions{Buffer: 256})
			for _, te := range feed {
				if err := rt.Send(te.Stream, te.Elem); err != nil {
					b.Fatal(err)
				}
			}
			rt.Close()
			if err := rt.Wait(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			for v, reg := range regs {
				if len(reg.Results) != items*bids {
					b.Fatalf("view%d delivered %d results, want %d", v, len(reg.Results), items*bids)
				}
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(len(feed)), "elements/op")
	}

	ladder := []int{1, 10, 100, 1000, 10000}
	for _, views := range ladder {
		views := views
		b.Run(fmt.Sprintf("identical/views=%d/shared", views), func(b *testing.B) {
			run(b, views, 1, true)
		})
	}
	for _, views := range ladder {
		views := views
		b.Run(fmt.Sprintf("mixed/views=%d/shared", views), func(b *testing.B) {
			run(b, views, 10, true)
		})
	}
	for _, views := range ladder {
		views := views
		if views > multiQueryCap {
			b.Logf("disjoint/views=%d skipped: O(views) trees, capped at %d", views, multiQueryCap)
			continue
		}
		b.Run(fmt.Sprintf("disjoint/views=%d/shared", views), func(b *testing.B) {
			run(b, views, views, true)
		})
	}
	for _, views := range ladder {
		views := views
		if views > multiQueryCap {
			b.Logf("independent/views=%d skipped: O(views) trees, capped at %d", views, multiQueryCap)
			continue
		}
		b.Run(fmt.Sprintf("independent/views=%d", views), func(b *testing.B) {
			run(b, views, views, false)
		})
	}
}
