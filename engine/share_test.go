package engine

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// Shared-subplan execution suite: fingerprint-equal Share registrations
// must fold onto one physical tree, every subscriber must observe
// exactly the output stream an independent tree would have produced,
// live attach/detach must cut subscriptions on exact element boundaries,
// and checkpoints must restore a register whose membership evolved
// mid-run.

// newShareAuctionDSMS registers the auction schemes and n Share copies
// of the auction query named share0..share<n-1>.
func newShareAuctionDSMS(t testing.TB, n int, opts Options) (*DSMS, []*Registered) {
	t.Helper()
	opts.Share = true
	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	regs := make([]*Registered, n)
	for i := range regs {
		reg, err := d.Register(fmt.Sprintf("share%d", i), workload.AuctionQuery(), opts)
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = reg
	}
	return d, regs
}

func requireEqualResults(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d diverges:\n  got:  %s\n  want: %s", label, i, got[i], want[i])
		}
	}
}

// TestShareFoldsIdenticalQueries: on the sequential path, fingerprint-
// equal Share registrations alias one tree, a differently-tagged Share
// query and an unshared query each keep their own, and every subscriber
// sees identical results.
func TestShareFoldsIdenticalQueries(t *testing.T) {
	d, regs := newShareAuctionDSMS(t, 5, Options{})
	solo, err := d.Register("solo", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := d.Register("tagged", workload.AuctionQuery(), Options{Share: true, ShareTag: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.PhysicalTrees(); got != 3 {
		t.Fatalf("PhysicalTrees = %d, want 3 (one share group + solo + tagged)", got)
	}
	for i, r := range regs {
		if r.Tree != regs[0].Tree {
			t.Fatalf("share%d does not alias the group tree", i)
		}
		if r.Fingerprint != regs[0].Fingerprint {
			t.Fatalf("share%d fingerprint %q differs from driver %q", i, r.Fingerprint, regs[0].Fingerprint)
		}
	}
	if tagged.Tree == regs[0].Tree {
		t.Fatal("ShareTag failed to discriminate: tagged query aliases the untagged tree")
	}
	if tagged.Fingerprint == regs[0].Fingerprint {
		t.Fatal("ShareTag did not change the fingerprint")
	}
	if solo.Fingerprint != "" {
		t.Fatalf("unshared query carries fingerprint %q", solo.Fingerprint)
	}
	if got := regs[0].SharedWith(); len(got) != 4 || got[0] != "share1" {
		t.Fatalf("SharedWith = %v", got)
	}

	for _, te := range auctionFeed(20, 3) {
		if err := d.Push(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	want := resultStrings(regs[0])
	if len(want) != 20*3 {
		t.Fatalf("driver delivered %d results, want %d", len(want), 20*3)
	}
	for i, r := range regs {
		requireEqualResults(t, fmt.Sprintf("share%d", i), want, resultStrings(r))
	}
	requireEqualResults(t, "solo", want, resultStrings(solo))
	requireEqualResults(t, "tagged", want, resultStrings(tagged))
	if got := d.TotalState(); got != 0 {
		t.Fatalf("TotalState = %d after full purge, want 0", got)
	}

	// A member's departure shrinks the group; the tree lives on.
	d.Unregister("share2")
	if got := d.PhysicalTrees(); got != 3 {
		t.Fatalf("PhysicalTrees after member unregister = %d, want 3", got)
	}
	if got := len(regs[0].group.members); got != 4 {
		t.Fatalf("group members after unregister = %d, want 4", got)
	}
}

// TestShareRuntimeFanOut: the sharded runtime runs one worker per share
// group; every member's Results and delivery counts match, and Stats by
// a follower's name answers with the shared tree's counters.
func TestShareRuntimeFanOut(t *testing.T) {
	d, regs := newShareAuctionDSMS(t, 3, Options{})
	solo, err := d.Register("solo", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(RuntimeOptions{})
	feed := auctionFeed(30, 3)
	for i, te := range feed {
		if err := rt.Send(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
		if i == len(feed)/2 {
			// A mid-run snapshot addressed by a follower's name.
			if _, err := rt.Stats("share2"); err != nil {
				t.Fatalf("Stats by follower name: %v", err)
			}
		}
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	want := resultStrings(regs[0])
	if len(want) != 30*3 {
		t.Fatalf("driver delivered %d results, want %d", len(want), 30*3)
	}
	for i, r := range regs {
		requireEqualResults(t, fmt.Sprintf("share%d", i), want, resultStrings(r))
		if r.Delivered() != regs[0].Delivered() {
			t.Fatalf("share%d delivered %d, driver %d", i, r.Delivered(), regs[0].Delivered())
		}
	}
	requireEqualResults(t, "solo", want, resultStrings(solo))
	s0, err := rt.Stats("share0")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := rt.Stats("share1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s0, s1) {
		t.Fatal("follower stats differ from driver stats on one shared tree")
	}
}

// TestShareAttachDetachBoundaries: a subscriber attached to a running
// group receives exactly a suffix of the driver's delivery sequence, a
// detached one keeps exactly a prefix, and detaching a group's last
// member retires the tree without disturbing the runtime.
func TestShareAttachDetachBoundaries(t *testing.T) {
	d, regs := newShareAuctionDSMS(t, 2, Options{})
	rt := d.RunSharded(RuntimeOptions{Buffer: 4})
	feed := auctionFeed(40, 3)
	half, threeQ := len(feed)/2, 3*len(feed)/4

	for _, te := range feed[:half] {
		if err := rt.Send(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	late, err := rt.Attach("late", workload.AuctionQuery(), Options{Share: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if late.Tree != regs[0].Tree {
		t.Fatal("attached query did not join the live share group")
	}
	for _, te := range feed[half:threeQ] {
		if err := rt.Send(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Detach("share1"); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	for _, te := range feed[threeQ:] {
		if err := rt.Send(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	driver := resultStrings(regs[0])
	if len(driver) != 40*3 {
		t.Fatalf("driver delivered %d results, want %d", len(driver), 40*3)
	}
	// Suffix property: the attach cut fell on an element boundary, so the
	// late subscriber's results are exactly the tail of the driver's.
	lateGot := resultStrings(late)
	if len(lateGot) == 0 || len(lateGot) >= len(driver) {
		t.Fatalf("late subscriber delivered %d results; want a proper non-empty suffix of %d", len(lateGot), len(driver))
	}
	requireEqualResults(t, "late suffix", driver[len(driver)-len(lateGot):], lateGot)
	// Prefix property for the detached member.
	earlyGot := resultStrings(regs[1])
	if len(earlyGot) == 0 || len(earlyGot) >= len(driver) {
		t.Fatalf("detached subscriber kept %d results; want a proper non-empty prefix of %d", len(earlyGot), len(driver))
	}
	requireEqualResults(t, "detached prefix", driver[:len(earlyGot)], earlyGot)
	if _, err := rt.Stats("share1"); err == nil {
		t.Fatal("Stats must not resolve a detached query")
	}

	// Last-subscriber retirement: a single-member group's tree retires at
	// its detach barrier; later sends have nowhere to route and the
	// runtime still closes cleanly.
	d2, regs2 := newShareAuctionDSMS(t, 1, Options{})
	rt2 := d2.RunSharded(RuntimeOptions{})
	for _, te := range auctionElems(1, 2) {
		if err := rt2.Send(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt2.Detach("share0"); err != nil {
		t.Fatal(err)
	}
	if got := d2.PhysicalTrees(); got != 0 {
		t.Fatalf("PhysicalTrees after retiring detach = %d, want 0", got)
	}
	for _, te := range auctionElems(2, 2) {
		if err := rt2.Send(te.Stream, te.Elem); err != nil {
			t.Fatalf("Send after retirement: %v", err)
		}
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := len(regs2[0].Results); got != 2 {
		t.Fatalf("retired query kept %d results, want the 2 delivered before detach", got)
	}
}

// TestSharedCheckpointRestoreEvolved is the recovery acceptance test for
// shared execution: N queries over K shared trees, with a subscriber
// attached AND one detached mid-run, checkpoint, kill, restore into a
// fresh register holding the evolved membership, resume — every
// surviving query's combined output and final stats must equal the
// uninterrupted run's.
func TestSharedCheckpointRestoreEvolved(t *testing.T) {
	build := func(withQ1 bool) (*DSMS, map[string]*Registered) {
		d := New()
		for _, s := range workload.AuctionSchemes().All() {
			d.RegisterScheme(s)
		}
		regs := make(map[string]*Registered)
		reg := func(name string, opts Options) {
			r, err := d.Register(name, workload.AuctionQuery(), opts)
			if err != nil {
				t.Fatal(err)
			}
			regs[name] = r
		}
		reg("q0", Options{Share: true})
		if withQ1 {
			reg("q1", Options{Share: true})
		}
		reg("q2", Options{Share: true, ShareTag: "other"})
		reg("q3", Options{})
		return d, regs
	}

	feed := auctionFeed(40, 3)
	cut, cut2 := len(feed)/2, 3*len(feed)/4

	d, regs := build(true)
	rt := d.RunSharded(RuntimeOptions{})
	sendAtAll(t, rt, feed, 0, cut)
	// Evolve mid-run: q4 joins q0's tree, q1 leaves it.
	q4, err := rt.Attach("q4", workload.AuctionQuery(), Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	regs["q4"] = q4
	if err := rt.Detach("q1"); err != nil {
		t.Fatal(err)
	}
	sendAtAll(t, rt, feed, cut, cut2)
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatalf("Checkpoint with shared trees: %v", err)
	}
	live := []string{"q0", "q2", "q3", "q4"}
	prefix := make(map[string][]string, len(live))
	for _, name := range live {
		prefix[name] = resultStrings(regs[name])
	}
	sendAtAll(t, rt, feed, cut2, len(feed))
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh register with the EVOLVED membership (q1 gone,
	// q4 present, same order) restores the snapshot and resumes.
	d2, _ := build(false)
	q4b, err := d2.Register("q4", workload.AuctionQuery(), Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.PhysicalTrees(); got != 3 {
		t.Fatalf("restored register PhysicalTrees = %d, want 3", got)
	}
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatalf("RestoreRuntime: %v", err)
	}
	if got := rt2.ResumeOffset("feed"); got != int64(cut2) {
		t.Fatalf("ResumeOffset = %d, want %d", got, cut2)
	}
	sendAtAll(t, rt2, feed, cut2, len(feed))
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}

	for _, name := range live {
		want := resultStrings(regs[name])
		var got []string
		got = append(got, prefix[name]...)
		r2, ok := d2.Get(name)
		if !ok {
			t.Fatalf("query %s missing after restore", name)
		}
		if name == "q4" {
			r2 = q4b
		}
		got = append(got, resultStrings(r2)...)
		requireEqualResults(t, name, want, got)
		wantStats, err := rt.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		gotStats, err := rt2.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("query %s: restored stats diverge:\n%v\nvs\n%v", name, gotStats, wantStats)
		}
		if r2.Delivered() != regs[name].Delivered() {
			t.Fatalf("query %s: delivered %d across restore, want %d", name, r2.Delivered(), regs[name].Delivered())
		}
	}
}

// TestShareRoleMismatchRejected: a snapshot written by a shared run must
// not restore into a register whose Share options disagree — the state
// presence per section would contradict the group roles.
func TestShareRoleMismatchRejected(t *testing.T) {
	d, _ := newShareAuctionDSMS(t, 2, Options{})
	rt := d.RunSharded(RuntimeOptions{})
	sendAtAll(t, rt, auctionFeed(10, 2), 0, 20)
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// Same names, but independent trees: share1's section carries no
	// state, yet the register expects it to own one.
	d2 := New()
	for _, s := range workload.AuctionSchemes().All() {
		d2.RegisterScheme(s)
	}
	for _, name := range []string{"share0", "share1"} {
		if _, err := d2.Register(name, workload.AuctionQuery(), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), RuntimeOptions{}); err == nil {
		t.Fatal("share-group role mismatch must reject the snapshot")
	}
}

// TestFanOutDeliveryAllocs is the alloc-floor guard for shared-tree
// fan-out: delivering one output batch to extra subscribers must not
// allocate — the whole point of sharing is O(subscribers) pointer work
// per delivery, not O(subscribers) copies. scripts/check.sh runs this
// test by name.
func TestFanOutDeliveryAllocs(t *testing.T) {
	outs := []stream.Element{
		stream.TupleElement(stream.NewTuple(stream.Int(1), stream.Int(2), stream.Str("x"), stream.Float(3), stream.Int(4))),
		stream.PunctElement(stream.MustPunctuation(stream.Wildcard(), stream.Const(stream.Int(2)), stream.Wildcard())),
	}
	newShard := func(regs []*Registered) *shard {
		driver := regs[0]
		s := &shard{
			reg:   driver,
			group: driver.group,
			subs:  append([]*Registered(nil), driver.group.members...),
		}
		s.rebuildSubs()
		return s
	}
	t.Run("active", func(t *testing.T) {
		sink := func(stream.Tuple) {}
		_, regs := newShareAuctionDSMS(t, 16, Options{OnResult: sink})
		s := newShard(regs)
		per := testing.AllocsPerRun(200, func() { s.deliver(outs) })
		if per > 0 {
			t.Fatalf("fan-out to 16 callback subscribers allocates %.1f times per batch, want 0", per)
		}
	})
	t.Run("passive", func(t *testing.T) {
		_, regs := newShareAuctionDSMS(t, 16, Options{})
		s := newShard(regs)
		// Pre-grow the shared log the way a warm shard would be, so the
		// measurement sees the steady state, not growslice warm-up.
		s.logTuples = make([]stream.Tuple, 0, 4096)
		per := testing.AllocsPerRun(200, func() { s.deliver(outs) })
		if per > 0 {
			t.Fatalf("fan-out to 16 passive subscribers allocates %.1f times per batch, want 0", per)
		}
	})
}
