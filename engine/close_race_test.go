package engine

// Graceful-shutdown ordering under contention: Runtime.Close (and Kill)
// racing an in-flight IngestWireParallel and a goroutine hammering the
// Stats/Checkpoint control barriers. The merger's kill-drain path must
// answer every pending barrier — no call may wedge, and under -race the
// teardown must be free of data races. Producer-side errors are expected
// here (a closed runtime rejects sends); hangs and races are not.

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"punctsafe/workload"
)

// trickleReader feeds the wire in small chunks, yielding between reads,
// so the ingest is reliably still in flight when the shutdown lands.
type trickleReader struct {
	data []byte
	off  int
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	runtime.Gosched()
	n := 257
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data)-r.off {
		n = len(r.data) - r.off
	}
	copy(p, r.data[r.off:r.off+n])
	r.off += n
	return n, nil
}

func TestCloseRacesParallelIngestAndBarriers(t *testing.T) {
	itemSchema := workload.AuctionQuery().Stream(0)
	bidSchema := workload.AuctionQuery().Stream(1)
	var w bytes.Buffer
	ww := NewWireWriter(&w, itemSchema, bidSchema)
	for _, te := range auctionFeed(60, 4) {
		if err := ww.Write(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	wire := w.Bytes()

	for _, kill := range []bool{false, true} {
		name := "close"
		if kill {
			name = "kill"
		}
		t.Run(name, func(t *testing.T) {
			for iter := 0; iter < 4; iter++ {
				d := New()
				for _, s := range workload.AuctionSchemes().All() {
					d.RegisterScheme(s)
				}
				if _, err := d.Register("q0", workload.AuctionQuery(), Options{
					EnforcePromises: true,
					Partitions:      2,
				}); err != nil {
					t.Fatal(err)
				}
				rt := d.RunSharded(RuntimeOptions{OnError: Quarantine})

				var wg sync.WaitGroup
				wg.Add(2)
				go func() {
					defer wg.Done()
					// A closed runtime rejects the send: that error is the
					// expected outcome, not a failure.
					rt.IngestWireParallel(&trickleReader{data: wire}, 4, itemSchema, bidSchema)
				}()
				stop := make(chan struct{})
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						rt.Stats("q0")
						rt.Checkpoint(io.Discard)
					}
				}()

				// Vary the landing point of the shutdown across iterations.
				// Kill's contract still requires Close to shut the
				// mailboxes and reap workers — a crash-path Wait without
				// Close would legitimately block.
				time.Sleep(time.Duration(iter) * 200 * time.Microsecond)
				if kill {
					rt.Kill()
				}
				rt.Close()

				done := make(chan error, 1)
				go func() { done <- rt.Wait() }()
				select {
				case err := <-done:
					if kill && err != ErrKilled {
						t.Fatalf("iter %d: killed runtime reported %v, want ErrKilled", iter, err)
					}
					if !kill && err != nil {
						t.Fatalf("iter %d: closed runtime reported %v", iter, err)
					}
				case <-time.After(30 * time.Second):
					t.Fatalf("iter %d: Wait wedged racing in-flight ingest and barriers", iter)
				}
				close(stop)
				joined := make(chan struct{})
				go func() { wg.Wait(); close(joined) }()
				select {
				case <-joined:
				case <-time.After(30 * time.Second):
					t.Fatalf("iter %d: an in-flight barrier or ingest was never answered", iter)
				}

				// Barriers issued after termination must still answer
				// immediately (with an error or a drained snapshot), never
				// hang.
				answered := make(chan struct{})
				go func() {
					rt.Stats("q0")
					rt.Checkpoint(io.Discard)
					close(answered)
				}()
				select {
				case <-answered:
				case <-time.After(30 * time.Second):
					t.Fatalf("iter %d: post-termination barrier wedged", iter)
				}
			}
		})
	}
}
