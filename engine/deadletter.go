package engine

import (
	"sync"

	"punctsafe/stream"
)

// DeadLetter is one quarantined offender: an element (or raw wire frame)
// the error policy removed from a stream instead of failing its shard.
type DeadLetter struct {
	// Seq is the offender's arrival order among all dead letters.
	Seq uint64
	// Stream names the raw stream the offender arrived on ("" when a wire
	// frame was too corrupt to even name its stream).
	Stream string
	// Query names the query whose shard rejected the element ("" for
	// wire-level faults caught before routing).
	Query string
	// Elem is the offending element, when it decoded at all.
	Elem stream.Element
	// Frame holds the raw bytes of an undecodable wire frame.
	Frame []byte
	// Err is the classification error that condemned the offender.
	Err error
}

// DeadLetterSnapshot is a point-in-time view of the dead-letter queue.
type DeadLetterSnapshot struct {
	// Total counts every offender the policy absorbed (Drop and
	// Quarantine both count; only Quarantine retains entries).
	Total uint64
	// Evicted counts retained entries later displaced by the bound.
	Evicted uint64
	// ByStream and ByQuery break Total down by origin. Wire-level faults
	// with an unknown stream count under "".
	ByStream map[string]uint64
	ByQuery  map[string]uint64
	// Entries are the retained offenders, oldest first.
	Entries []DeadLetter
}

// deadLetterQueue is the bounded quarantine behind a Runtime. Offenders
// arrive from shard workers and ingesting goroutines concurrently; the
// queue is mutex-protected, which is fine because it sits entirely on the
// error path.
type deadLetterQueue struct {
	mu       sync.Mutex
	keep     bool // retain entries (Quarantine) or only count (Drop)
	limit    int
	seq      uint64
	evicted  uint64
	byStream map[string]uint64
	byQuery  map[string]uint64
	ring     []DeadLetter // retained entries, ring-buffered
	head     int          // index of the oldest retained entry
	n        int          // retained count
}

const defaultDeadLetterLimit = 128

func newDeadLetterQueue(keep bool, limit int) *deadLetterQueue {
	if limit <= 0 {
		limit = defaultDeadLetterLimit
	}
	return &deadLetterQueue{
		keep:     keep,
		limit:    limit,
		byStream: make(map[string]uint64),
		byQuery:  make(map[string]uint64),
	}
}

// add records one offender, retaining it when the queue keeps entries.
// The newest entries win: once the bound is reached the oldest retained
// entry is evicted (its counts remain).
func (q *deadLetterQueue) add(d DeadLetter) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	d.Seq = q.seq
	q.byStream[d.Stream]++
	if d.Query != "" {
		q.byQuery[d.Query]++
	}
	if !q.keep {
		return
	}
	if q.ring == nil {
		q.ring = make([]DeadLetter, q.limit)
	}
	if q.n == q.limit {
		q.head = (q.head + 1) % q.limit
		q.n--
		q.evicted++
	}
	q.ring[(q.head+q.n)%q.limit] = d
	q.n++
}

// install replaces the queue's state with a restored snapshot. The
// queue's own keep/limit configuration governs retention: entries beyond
// the bound are dropped oldest-first (counted as evicted), and a
// non-retaining (Drop) queue keeps only the counters, exactly as if the
// offenders had arrived live.
func (q *deadLetterQueue) install(s DeadLetterSnapshot) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq = s.Total
	q.evicted = s.Evicted
	q.byStream = make(map[string]uint64, len(s.ByStream))
	for k, v := range s.ByStream {
		q.byStream[k] = v
	}
	q.byQuery = make(map[string]uint64, len(s.ByQuery))
	for k, v := range s.ByQuery {
		q.byQuery[k] = v
	}
	q.ring = nil
	q.head = 0
	q.n = 0
	if !q.keep {
		return
	}
	entries := s.Entries
	if len(entries) > q.limit {
		q.evicted += uint64(len(entries) - q.limit)
		entries = entries[len(entries)-q.limit:]
	}
	if len(entries) > 0 {
		q.ring = make([]DeadLetter, q.limit)
		q.n = copy(q.ring, entries)
	}
}

// snapshot returns a detached copy of the queue's state.
func (q *deadLetterQueue) snapshot() DeadLetterSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := DeadLetterSnapshot{
		Total:    q.seq,
		Evicted:  q.evicted,
		ByStream: make(map[string]uint64, len(q.byStream)),
		ByQuery:  make(map[string]uint64, len(q.byQuery)),
		Entries:  make([]DeadLetter, 0, q.n),
	}
	for k, v := range q.byStream {
		s.ByStream[k] = v
	}
	for k, v := range q.byQuery {
		s.ByQuery[k] = v
	}
	for i := 0; i < q.n; i++ {
		s.Entries = append(s.Entries, q.ring[(q.head+i)%q.limit])
	}
	return s
}
