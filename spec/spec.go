// Package spec parses the textual description format used by the command
// line tools to declare streams, join predicates and punctuation schemes.
//
// The format is line based; '#' starts a comment. Three directives:
//
//	stream <name>(<attr>:<kind>, ...)     kind: int | float | string
//	join   <stream>.<attr> = <stream>.<attr>
//	scheme <name>(<mask>)                 mask: '+' punctuatable, '_' not
//
// Example (the paper's Figure 5):
//
//	stream S1(A:int, B:int)
//	stream S2(B:int, C:int)
//	stream S3(A:int, C:int)
//	join S1.B = S2.B
//	join S2.C = S3.C
//	join S3.A = S1.A
//	scheme S1(_, +)
//	scheme S2(_, +)
//	scheme S3(+, _)
package spec

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"punctsafe/query"
	"punctsafe/stream"
)

// Spec is a parsed query description.
type Spec struct {
	Query   *query.CJQ
	Schemes *stream.SchemeSet
}

// Parse reads a spec document.
func Parse(r io.Reader) (*Spec, error) {
	b := query.NewBuilder()
	schemes := stream.NewSchemeSet()
	schemas := make(map[string]*stream.Schema)
	sc := bufio.NewScanner(r)
	lineNo := 0
	sawJoin := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		directive, rest, ok := cutSpace(line)
		if !ok {
			return nil, fmt.Errorf("spec: line %d: missing arguments", lineNo)
		}
		switch directive {
		case "stream":
			s, err := parseStream(rest)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			if _, dup := schemas[s.Name()]; dup {
				return nil, fmt.Errorf("spec: line %d: stream %q declared twice", lineNo, s.Name())
			}
			schemas[s.Name()] = s
			b.AddStream(s)
		case "join":
			left, right, err := parseJoin(rest)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			b.Join(left, right)
			sawJoin = true
		case "scheme":
			name, mask, err := parseSchemeRef(rest)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			sch, ok := schemas[name]
			if !ok {
				return nil, fmt.Errorf("spec: line %d: scheme for undeclared stream %q", lineNo, name)
			}
			s, err := stream.ParseScheme(name, mask)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			if err := s.Validate(sch); err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
			schemes.Add(s)
		default:
			return nil, fmt.Errorf("spec: line %d: unknown directive %q", lineNo, directive)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawJoin {
		return nil, fmt.Errorf("spec: no join predicates declared")
	}
	q, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &Spec{Query: q, Schemes: schemes}, nil
}

// ParseString parses a spec document from a string.
func ParseString(s string) (*Spec, error) { return Parse(strings.NewReader(s)) }

func cutSpace(s string) (first, rest string, ok bool) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", false
	}
	return s[:i], strings.TrimSpace(s[i+1:]), true
}

// parseStream parses "Name(attr:kind, ...)".
func parseStream(s string) (*stream.Schema, error) {
	name, body, err := splitParens(s)
	if err != nil {
		return nil, err
	}
	var attrs []stream.Attribute
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty attribute in %q", s)
		}
		col := strings.SplitN(part, ":", 2)
		if len(col) != 2 {
			return nil, fmt.Errorf("attribute %q is not name:kind", part)
		}
		kind, err := parseKind(strings.TrimSpace(col[1]))
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, stream.Attribute{Name: strings.TrimSpace(col[0]), Kind: kind})
	}
	return stream.NewSchema(name, attrs...)
}

func parseKind(s string) (stream.Kind, error) {
	switch s {
	case "int":
		return stream.KindInt, nil
	case "float":
		return stream.KindFloat, nil
	case "string":
		return stream.KindString, nil
	default:
		return stream.KindInvalid, fmt.Errorf("unknown kind %q", s)
	}
}

// parseJoin parses "A.x = B.y".
func parseJoin(s string) (left, right string, err error) {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return "", "", fmt.Errorf("join %q is not of the form A.x = B.y", s)
	}
	left = strings.TrimSpace(parts[0])
	right = strings.TrimSpace(parts[1])
	if !strings.Contains(left, ".") || !strings.Contains(right, ".") {
		return "", "", fmt.Errorf("join %q references must be Stream.Attr", s)
	}
	return left, right, nil
}

// parseSchemeRef parses "Name(mask)".
func parseSchemeRef(s string) (name, mask string, err error) {
	name, body, err := splitParens(s)
	if err != nil {
		return "", "", err
	}
	return name, body, nil
}

func splitParens(s string) (head, body string, err error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("%q is not of the form Name(...)", s)
	}
	return strings.TrimSpace(s[:open]), s[open+1 : len(s)-1], nil
}
