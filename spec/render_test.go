package spec

import (
	"math/rand"
	"testing"

	"punctsafe/safety"
	"punctsafe/stream"
	"punctsafe/workload"
)

func TestRenderRoundTripFigure5(t *testing.T) {
	sp, err := ParseString(fig5Spec)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(sp.Query, sp.Schemes)
	again, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, text)
	}
	if again.Query.String() != sp.Query.String() {
		t.Fatalf("query round trip:\n%s\nvs\n%s", again.Query, sp.Query)
	}
	if again.Schemes.String() != sp.Schemes.String() {
		t.Fatalf("schemes round trip: %s vs %s", again.Schemes, sp.Schemes)
	}
}

// TestRenderRoundTripRandom: on random synthetic queries (including
// ordered schemes), Parse(Render(x)) preserves the query structure, the
// scheme set, and — the property that matters — the safety verdict.
func TestRenderRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	topos := []workload.Topology{workload.Chain, workload.Cycle, workload.Star, workload.Clique}
	for trial := 0; trial < 150; trial++ {
		q, err := workload.SyntheticQuery(topos[rng.Intn(len(topos))], 2+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		schemes := stream.NewSchemeSet()
		for i := 0; i < q.N(); i++ {
			ja := q.JoinAttrs(i)
			for _, a := range ja {
				if rng.Intn(3) == 0 {
					continue
				}
				mask := make([]bool, q.Stream(i).Arity())
				mask[a] = true
				if rng.Intn(4) == 0 {
					ordered := make([]bool, len(mask))
					ordered[a] = true
					schemes.Add(stream.MustOrderedScheme(q.Stream(i).Name(), mask, ordered))
				} else {
					schemes.Add(stream.MustScheme(q.Stream(i).Name(), mask...))
				}
			}
		}
		text := Render(q, schemes)
		sp, err := ParseString(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if got, want := sp.Query.String(), q.String(); got != want {
			t.Fatalf("trial %d: query %s != %s", trial, got, want)
		}
		if got, want := sp.Schemes.String(), schemes.String(); got != want {
			t.Fatalf("trial %d: schemes %s != %s", trial, got, want)
		}
		before := safety.Transform(q, schemes).SingleNode()
		after := safety.Transform(sp.Query, sp.Schemes).SingleNode()
		if before != after {
			t.Fatalf("trial %d: verdict flipped through render/parse", trial)
		}
	}
}

func TestRenderMatchesQueryShape(t *testing.T) {
	q := workload.AuctionQuery()
	text := Render(q, workload.AuctionSchemes())
	for _, want := range []string{
		"stream item(sellerid:int, itemid:int, name:string, initialprice:float)",
		"stream bid(bidderid:int, itemid:int, increase:float)",
		"join item.itemid = bid.itemid",
		"scheme item(_, +, _, _)",
		"scheme bid(_, +, _)",
	} {
		if !contains(text, want) {
			t.Errorf("rendered spec missing %q:\n%s", want, text)
		}
	}
	// Ordered schemes render with '<'.
	sq := workload.SensorQuery()
	stext := Render(sq, workload.SensorSchemes())
	if !contains(stext, "scheme temp(<, _)") {
		t.Errorf("ordered scheme rendering:\n%s", stext)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
