package spec

import (
	"strings"
	"testing"

	"punctsafe/safety"
)

const fig5Spec = `
# The paper's Figure 5.
stream S1(A:int, B:int)
stream S2(B:int, C:int)
stream S3(A:int, C:int)
join S1.B = S2.B
join S2.C = S3.C
join S3.A = S1.A
scheme S1(_, +)
scheme S2(_, +)
scheme S3(+, _)
`

func TestParseFigure5(t *testing.T) {
	sp, err := ParseString(fig5Spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Query.N() != 3 || len(sp.Query.Predicates()) != 3 {
		t.Fatalf("parsed query %s", sp.Query)
	}
	if sp.Schemes.Len() != 3 {
		t.Fatalf("parsed %d schemes", sp.Schemes.Len())
	}
	rep, err := safety.Check(sp.Query, sp.Schemes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatal("Figure 5 spec must check safe")
	}
}

func TestParseKinds(t *testing.T) {
	sp, err := ParseString(`
stream item(sellerid:int, itemid:int, name:string, initialprice:float)
stream bid(bidderid:int, itemid:int, increase:float)
join item.itemid = bid.itemid
scheme bid(_, +, _)
`)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Query.Stream(0).Attr(2).Kind.String() != "string" {
		t.Fatal("kind parsing broken")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":   "streem S(a:int)\n",
		"bad attribute":       "stream S(a)\nstream T(a:int)\njoin S.a = T.a\n",
		"bad kind":            "stream S(a:decimal)\nstream T(a:int)\njoin S.a = T.a\n",
		"dup stream":          "stream S(a:int)\nstream S(a:int)\njoin S.a = S.a\n",
		"bad join":            "stream S(a:int)\nstream T(a:int)\njoin S.a T.a\n",
		"bare join ref":       "stream S(a:int)\nstream T(a:int)\njoin Sa = T.a\n",
		"scheme before decl":  "scheme S(+)\n",
		"scheme arity":        "stream S(a:int)\nstream T(a:int)\njoin S.a = T.a\nscheme S(+, _)\n",
		"scheme bad mask":     "stream S(a:int)\nstream T(a:int)\njoin S.a = T.a\nscheme S(x)\n",
		"no joins":            "stream S(a:int)\nstream T(a:int)\n",
		"missing args":        "stream\n",
		"unknown join stream": "stream S(a:int)\nstream T(a:int)\njoin S.a = U.a\n",
	}
	for name, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	doc := strings.ReplaceAll(fig5Spec, "join S2.C = S3.C", "join S2.C = S3.C   # chained")
	if _, err := ParseString(doc); err != nil {
		t.Fatal(err)
	}
}
