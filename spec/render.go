package spec

import (
	"fmt"
	"strings"

	"punctsafe/query"
	"punctsafe/stream"
)

// Render serializes a query and scheme set back into the spec text
// format, such that Parse(Render(q, schemes)) reproduces them. Schemes
// for streams outside the query are omitted (they could not be validated
// against a declared schema).
func Render(q *query.CJQ, schemes *stream.SchemeSet) string {
	var b strings.Builder
	for i := 0; i < q.N(); i++ {
		sc := q.Stream(i)
		b.WriteString("stream ")
		b.WriteString(sc.Name())
		b.WriteByte('(')
		for a := 0; a < sc.Arity(); a++ {
			if a > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s:%s", sc.Attr(a).Name, sc.Attr(a).Kind)
		}
		b.WriteString(")\n")
	}
	for _, p := range q.Predicates() {
		ls, rs := q.Stream(p.Left), q.Stream(p.Right)
		fmt.Fprintf(&b, "join %s.%s = %s.%s\n",
			ls.Name(), ls.Attr(p.LeftAttr).Name, rs.Name(), rs.Attr(p.RightAttr).Name)
	}
	if schemes != nil {
		for i := 0; i < q.N(); i++ {
			name := q.Stream(i).Name()
			for _, s := range schemes.ForStream(name) {
				b.WriteString("scheme ")
				b.WriteString(name)
				b.WriteByte('(')
				oi := s.OrderedIndex()
				for a, p := range s.Punctuatable {
					if a > 0 {
						b.WriteString(", ")
					}
					switch {
					case a == oi:
						b.WriteByte('<')
					case p:
						b.WriteByte('+')
					default:
						b.WriteByte('_')
					}
				}
				b.WriteString(")\n")
			}
		}
	}
	return b.String()
}
