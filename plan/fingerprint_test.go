package plan

import (
	"strings"
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
)

// figure5Permuted is the Figure 5 query with its stream list and
// predicates written in a different (but equivalent) order: streams
// listed S3, S1, S2 and predicates phrased through a different chain of
// the same equality classes.
func figure5Permuted(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(stream.MustSchema("S3", intAttrs("A", "C")...)).
		AddStream(stream.MustSchema("S1", intAttrs("A", "B")...)).
		AddStream(stream.MustSchema("S2", intAttrs("B", "C")...)).
		Join("S1.A", "S3.A").
		Join("S3.C", "S2.C").
		Join("S2.B", "S1.B").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
		stream.MustScheme("S1", false, true),
	)
	return q, schemes
}

func TestFingerprintInvariantToListingOrder(t *testing.T) {
	q1, s1 := figure5(t)
	q2, s2 := figure5Permuted(t)

	// The same physical plan, expressed against each query's own stream
	// indices: MJoin(S1, S2, S3).
	p1 := Join(Leaf(0), Leaf(1), Leaf(2))
	p2 := Join(Leaf(1), Leaf(2), Leaf(0))

	f1 := Fingerprint(q1, s1, p1, "tag")
	f2 := Fingerprint(q2, s2, p2, "tag")
	if f1 != f2 {
		t.Fatalf("equivalent queries fingerprint differently:\n%s\n%s",
			Canonical(q1, s1, p1, "tag"), Canonical(q2, s2, p2, "tag"))
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	q, s := figure5(t)
	base := Join(Leaf(0), Leaf(1), Leaf(2))
	fp := func(root *Node, schemes *stream.SchemeSet, tag string) string {
		return Fingerprint(q, schemes, root, tag)
	}
	ref := fp(base, s, "tag")

	// Different plan shape (join order is physical).
	if got := fp(Join(Leaf(0), Leaf(2), Leaf(1)), s, "tag"); got == ref {
		t.Fatal("child-order change must change the fingerprint")
	}
	if got := fp(Join(Join(Leaf(0), Leaf(1)), Leaf(2)), s, "tag"); got == ref {
		t.Fatal("tree-shape change must change the fingerprint")
	}

	// Different scheme set.
	s2 := stream.NewSchemeSet(
		stream.MustScheme("S1", true, true),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
	if got := fp(base, s2, "tag"); got == ref {
		t.Fatal("scheme change must change the fingerprint")
	}

	// Different engine config tag.
	if got := fp(base, s, "other"); got == ref {
		t.Fatal("tag change must change the fingerprint")
	}
}

func TestCanonicalEqualityClasses(t *testing.T) {
	q, s := figure5(t)
	c := Canonical(q, s, Join(Leaf(0), Leaf(1), Leaf(2)), "")
	// Canonical stream order is the schema-rendering sort: S1, S2, S3
	// (ranks 0, 1, 2). The three pairwise predicates form three 2-term
	// classes over those ranks.
	for _, want := range []string{"{0.0,2.0}", "{0.1,1.0}", "{1.1,2.1}"} {
		if !strings.Contains(c, want) {
			t.Fatalf("canonical form missing class %s: %s", want, c)
		}
	}
}
