package plan

import (
	"fmt"
	"math"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// CostModel carries the statistics the §5.2 cost/benefit analysis needs:
// per-stream tuple arrival rates, per-stream punctuation rates (how often
// the application closes a value), and per-predicate join selectivities.
// All rates are relative (tuples per logical tick); the model compares
// plans, it does not predict wall-clock numbers.
type CostModel struct {
	// TupleRate[i] is stream i's tuple arrival rate.
	TupleRate []float64
	// PunctRate[i] is stream i's punctuation arrival rate. A zero rate
	// means values are never closed: purgeable states then still grow and
	// the model prices them like unpurgeable ones.
	PunctRate []float64
	// Selectivity maps each normalized predicate to its match
	// probability; missing predicates default to DefaultSelectivity.
	Selectivity map[query.Predicate]float64
	// DefaultSelectivity is used for predicates without an entry.
	DefaultSelectivity float64
	// PunctOverhead is the processing cost charged per punctuation
	// handled (§5.2: punctuations have processing costs, not only
	// benefits).
	PunctOverhead float64
}

// DefaultCostModel assumes unit tuple rates, punctuation rates that close
// values promptly, and a mild default selectivity.
func DefaultCostModel(q *query.CJQ) *CostModel {
	m := &CostModel{
		TupleRate:          make([]float64, q.N()),
		PunctRate:          make([]float64, q.N()),
		Selectivity:        make(map[query.Predicate]float64),
		DefaultSelectivity: 0.01,
		PunctOverhead:      0.5,
	}
	for i := range m.TupleRate {
		m.TupleRate[i] = 1
		m.PunctRate[i] = 0.5
	}
	return m
}

// selectivityOf returns the selectivity of a predicate.
func (m *CostModel) selectivityOf(p query.Predicate) float64 {
	if s, ok := m.Selectivity[p.Normalize()]; ok {
		return s
	}
	return m.DefaultSelectivity
}

// Cost is the estimated steady-state cost of a plan.
type Cost struct {
	// State is the expected number of stored tuples across all operators
	// (∞ when some operator input is unpurgeable or never punctuated).
	State float64
	// PunctState is the expected number of stored punctuations.
	PunctState float64
	// Work is the expected per-tick processing cost (probe work plus
	// punctuation handling).
	Work float64
}

// Total folds the components into one comparable scalar. Infinite state
// dominates, so unsafe plans always lose.
func (c Cost) Total() float64 {
	return c.State + c.PunctState + c.Work
}

// String renders the cost.
func (c Cost) String() string {
	return fmt.Sprintf("state=%.1f puncts=%.1f work=%.1f", c.State, c.PunctState, c.Work)
}

// PlanCost estimates the steady-state cost of a plan tree. Model: a
// purgeable input's state reaches tupleRate/punctRate tuples (each
// punctuation closes, on average, one value's worth of tuples); an
// unpurgeable or never-punctuated input grows without bound (priced ∞).
// Intermediate inputs inherit the product of their subtree's rates and
// selectivities. Probe work per arrival is proportional to the expected
// matching tuples in every other state.
func (m *CostModel) PlanCost(q *query.CJQ, schemes *stream.SchemeSet, root *Node) Cost {
	var total Cost
	for _, op := range root.Operators() {
		oq, err := OperatorQuery(q, op)
		if err != nil {
			return Cost{State: math.Inf(1)}
		}
		oset := OperatorSchemes(q, schemes, op)
		c := m.operatorCost(q, op, oq, oset)
		total.State += c.State
		total.PunctState += c.PunctState
		total.Work += c.Work
	}
	return total
}

func (m *CostModel) operatorCost(q *query.CJQ, op *Node, oq *query.CJQ, oset *stream.SchemeSet) Cost {
	n := oq.N()
	inRate := make([]float64, n)
	inPunct := make([]float64, n)
	for ci, child := range op.Children {
		inRate[ci], inPunct[ci] = m.subtreeRates(q, child)
	}

	// Purgeability per input decides finite vs infinite state.
	var c Cost
	gpg := safety.BuildGPG(oq, oset)
	stateSize := make([]float64, n)
	for i := 0; i < n; i++ {
		if !gpg.StreamPurgeable(i) || inPunct[i] <= 0 {
			stateSize[i] = math.Inf(1)
		} else {
			stateSize[i] = inRate[i] / inPunct[i]
		}
		c.State += stateSize[i]
		c.PunctState += inPunct[i] * 2 // punctuations retained while relevant
		c.Work += inPunct[i] * m.PunctOverhead
	}
	// Probe work: each arriving tuple probes the other states; expected
	// matches shrink by the predicate selectivities.
	for i := 0; i < n; i++ {
		probe := inRate[i]
		matches := 1.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sel := m.childPairSelectivity(q, op.Children[i], op.Children[j])
			sz := stateSize[j]
			if math.IsInf(sz, 1) {
				sz = 1e6 // finite stand-in so work stays comparable
			}
			matches *= math.Max(sel*sz, 1e-9)
		}
		c.Work += probe * matches
	}
	return c
}

// subtreeRates estimates the output tuple and punctuation rates of a
// subtree: a leaf's configured rates, or for a join node the product of
// child rates scaled by the crossing selectivities (tuples) and the
// minimum child punctuation rate (punctuations propagate no faster than
// their scarcest source).
func (m *CostModel) subtreeRates(q *query.CJQ, n *Node) (tuples, puncts float64) {
	if n.IsLeaf() {
		return m.TupleRate[n.Stream], m.PunctRate[n.Stream]
	}
	tuples = 1
	puncts = math.Inf(1)
	for _, c := range n.Children {
		tr, pr := m.subtreeRates(q, c)
		tuples *= tr
		if pr < puncts {
			puncts = pr
		}
	}
	for i := 0; i < len(n.Children); i++ {
		for j := i + 1; j < len(n.Children); j++ {
			tuples *= m.childPairSelectivity(q, n.Children[i], n.Children[j])
		}
	}
	if math.IsInf(puncts, 1) {
		puncts = 0
	}
	return tuples, puncts
}

// childPairSelectivity multiplies the selectivities of the original
// predicates crossing two subtrees (1 when none cross).
func (m *CostModel) childPairSelectivity(q *query.CJQ, a, b *Node) float64 {
	inA := make(map[int]bool)
	for _, l := range a.Leaves() {
		inA[l] = true
	}
	inB := make(map[int]bool)
	for _, l := range b.Leaves() {
		inB[l] = true
	}
	sel := 1.0
	for _, p := range q.Predicates() {
		if (inA[p.Left] && inB[p.Right]) || (inB[p.Left] && inA[p.Right]) {
			sel *= m.selectivityOf(p)
		}
	}
	return sel
}
