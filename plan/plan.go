// Package plan models execution plans for continuous join queries and
// implements the §5.2 machinery around them: checking a concrete plan's
// safety (Definition 2: every operator purgeable), enumerating safe plans
// from strongly connected sub-graphs of the punctuation graph, deriving
// the punctuation schemes of intermediate streams (so upper operators of
// tree plans can be analysed and executed), and a cost model to choose
// among safe alternatives.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// Node is one node of an execution plan tree. A leaf references a stream
// of the query by index; an internal node is a join operator (binary when
// it has two children, MJoin otherwise) over its children's outputs.
type Node struct {
	// Stream is the query stream index for a leaf; -1 for join nodes.
	Stream int
	// Children are the operator inputs of a join node (nil for leaves).
	Children []*Node
}

// Leaf returns a leaf node for query stream index i.
func Leaf(i int) *Node { return &Node{Stream: i} }

// Join returns a join node over the given children.
func Join(children ...*Node) *Node {
	return &Node{Stream: -1, Children: children}
}

// IsLeaf reports whether the node is a stream leaf.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves returns the query stream indices covered by the subtree, in
// left-to-right (in-order) sequence.
func (n *Node) Leaves() []int {
	if n.IsLeaf() {
		return []int{n.Stream}
	}
	var out []int
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Operators returns every join node of the subtree, bottom-up (children
// before parents).
func (n *Node) Operators() []*Node {
	if n.IsLeaf() {
		return nil
	}
	var out []*Node
	for _, c := range n.Children {
		out = append(out, c.Operators()...)
	}
	return append(out, n)
}

// String renders the tree, e.g. ((0 ⨝ 1) ⨝ 2).
func (n *Node) String() string {
	if n.IsLeaf() {
		return fmt.Sprintf("%d", n.Stream)
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " JOIN ") + ")"
}

// Render renders the tree with stream names from the query.
func (n *Node) Render(q *query.CJQ) string {
	if n.IsLeaf() {
		return q.Stream(n.Stream).Name()
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.Render(q)
	}
	return "(" + strings.Join(parts, " JOIN ") + ")"
}

// Validate checks that the tree is a well-formed plan for q: every join
// node has at least two children, every query stream appears exactly
// once as a leaf, and every join node's children are pairwise connected
// by at least one predicate (no cross products).
func (n *Node) Validate(q *query.CJQ) error {
	leaves := n.Leaves()
	seen := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		if l < 0 || l >= q.N() {
			return fmt.Errorf("plan: leaf %d out of range", l)
		}
		if seen[l] {
			return fmt.Errorf("plan: stream %d appears twice", l)
		}
		seen[l] = true
	}
	if len(seen) != q.N() {
		return fmt.Errorf("plan: covers %d of %d streams", len(seen), q.N())
	}
	for _, op := range n.Operators() {
		if len(op.Children) < 2 {
			return fmt.Errorf("plan: join node with %d child(ren)", len(op.Children))
		}
		if _, err := OperatorQuery(q, op); err != nil {
			return err
		}
	}
	return nil
}

// OperatorQuery builds the join query one operator of the plan executes:
// each child is one input stream (leaves keep their schema; internal
// children get the derived intermediate schema), and the predicates are
// the original predicates crossing between the children's leaf sets.
func OperatorQuery(q *query.CJQ, op *Node) (*query.CJQ, error) {
	if op.IsLeaf() {
		return nil, fmt.Errorf("plan: OperatorQuery on a leaf")
	}
	schemas := make([]*stream.Schema, len(op.Children))
	// colOf[child][origStream] = column offset of that stream's attributes
	// within the child's output schema.
	colOf := make([]map[int]int, len(op.Children))
	childOf := make(map[int]int) // original stream -> child index
	for ci, c := range op.Children {
		schemas[ci] = SubtreeSchema(q, c)
		colOf[ci] = make(map[int]int)
		off := 0
		for _, leaf := range c.Leaves() {
			colOf[ci][leaf] = off
			off += q.Stream(leaf).Arity()
			childOf[leaf] = ci
		}
	}
	var preds []query.Predicate
	for _, p := range q.Predicates() {
		lc, lok := childOf[p.Left]
		rc, rok := childOf[p.Right]
		if !lok || !rok || lc == rc {
			continue
		}
		preds = append(preds, query.Predicate{
			Left:      lc,
			LeftAttr:  colOf[lc][p.Left] + p.LeftAttr,
			Right:     rc,
			RightAttr: colOf[rc][p.Right] + p.RightAttr,
		})
	}
	oq, err := query.NewCJQ(schemas, preds)
	if err != nil {
		return nil, fmt.Errorf("plan: operator %s: %w", op.Render(q), err)
	}
	return oq, nil
}

// SubtreeSchema returns the schema a subtree's output carries: the leaf's
// schema for leaves, otherwise the concatenation of the leaf schemas in
// subtree order with globally unique column names <stream>_<attr>.
func SubtreeSchema(q *query.CJQ, n *Node) *stream.Schema {
	if n.IsLeaf() {
		return q.Stream(n.Stream)
	}
	var attrs []stream.Attribute
	var names []string
	for _, leaf := range n.Leaves() {
		sc := q.Stream(leaf)
		names = append(names, sc.Name())
		for i := 0; i < sc.Arity(); i++ {
			attrs = append(attrs, stream.Attribute{
				Name: sc.Name() + "_" + sc.Attr(i).Name,
				Kind: sc.Attr(i).Kind,
			})
		}
	}
	return stream.MustSchema("("+strings.Join(names, "*")+")", attrs...)
}

// DerivedSchemes lifts the punctuation schemes of a subtree's leaf
// streams onto the subtree's output schema. An operator propagates a
// punctuation to its output once no stored tuple of that input matches
// it, so every leaf scheme yields an output scheme with the same
// punctuatable attributes at their concatenated positions.
func DerivedSchemes(q *query.CJQ, schemes *stream.SchemeSet, n *Node) []stream.Scheme {
	if n.IsLeaf() {
		return schemes.ForStream(q.Stream(n.Stream).Name())
	}
	out := SubtreeSchema(q, n)
	var lifted []stream.Scheme
	off := 0
	for _, leaf := range n.Leaves() {
		sc := q.Stream(leaf)
		for _, s := range schemes.ForStream(sc.Name()) {
			mask := make([]bool, out.Arity())
			ordered := make([]bool, out.Arity())
			for _, a := range s.PunctuatableIndexes() {
				mask[off+a] = true
			}
			if oi := s.OrderedIndex(); oi >= 0 {
				ordered[off+oi] = true
			}
			lifted = append(lifted, stream.MustOrderedScheme(out.Name(), mask, ordered))
		}
		off += sc.Arity()
	}
	return lifted
}

// OperatorSchemes assembles the scheme set visible to one operator: the
// derived schemes of each child.
func OperatorSchemes(q *query.CJQ, schemes *stream.SchemeSet, op *Node) *stream.SchemeSet {
	set := stream.NewSchemeSet()
	for _, c := range op.Children {
		for _, s := range DerivedSchemes(q, schemes, c) {
			set.Add(s)
		}
	}
	return set
}

// OperatorReport is the safety analysis of one plan operator.
type OperatorReport struct {
	Op        *Node
	Query     *query.CJQ
	Purgeable bool
	// InputPurgeable[i] is the Theorem 3 verdict per operator input.
	InputPurgeable []bool
}

// CheckPlan decides Definition 2: a plan is safe iff every join operator
// is purgeable under the schemes visible to it (leaf schemes plus the
// schemes derived for intermediate inputs). It returns the per-operator
// reports bottom-up.
func CheckPlan(q *query.CJQ, schemes *stream.SchemeSet, root *Node) (bool, []OperatorReport, error) {
	if err := root.Validate(q); err != nil {
		return false, nil, err
	}
	safe := true
	var reports []OperatorReport
	for _, op := range root.Operators() {
		oq, err := OperatorQuery(q, op)
		if err != nil {
			return false, nil, err
		}
		oset := OperatorSchemes(q, schemes, op)
		gpg := safety.BuildGPG(oq, oset)
		rep := OperatorReport{Op: op, Query: oq, InputPurgeable: make([]bool, oq.N())}
		rep.Purgeable = true
		for i := 0; i < oq.N(); i++ {
			rep.InputPurgeable[i] = gpg.StreamPurgeable(i)
			if !rep.InputPurgeable[i] {
				rep.Purgeable = false
			}
		}
		if !rep.Purgeable {
			safe = false
		}
		reports = append(reports, rep)
	}
	return safe, reports, nil
}

// subsetKey encodes a stream subset as a bitmask (queries are small; the
// enumerator refuses queries beyond 20 streams).
type subsetKey uint32

func keyOfStreams(streams []int) subsetKey {
	var k subsetKey
	for _, s := range streams {
		k |= 1 << uint(s)
	}
	return k
}

func (k subsetKey) streams() []int {
	var out []int
	for i := 0; k != 0; i++ {
		if k&1 != 0 {
			out = append(out, i)
		}
		k >>= 1
	}
	return out
}

func (k subsetKey) count() int {
	c := 0
	for k != 0 {
		c += int(k & 1)
		k >>= 1
	}
	return c
}

// EnumerateSafe enumerates safe execution plans bottom-up in the System-R
// style over strongly connected sub-graphs (§5.2 "Plan Enumeration"): a
// subset of streams is a building block iff some operator tree over it is
// safe; blocks compose by binary joins, and every connected subset also
// admits the flat MJoin over its streams when that operator is purgeable.
// It returns all safe plans found, best-cost first according to the cost
// model (pass nil for the default model). The search covers flat MJoins,
// all binary trees, and mixed trees whose internal MJoins are flat; this
// is the paper's building-block construction.
func EnumerateSafe(q *query.CJQ, schemes *stream.SchemeSet, model *CostModel) ([]*Node, error) {
	if q.N() > 20 {
		return nil, fmt.Errorf("plan: enumeration supports up to 20 streams, query has %d", q.N())
	}
	if model == nil {
		model = DefaultCostModel(q)
	}
	full := subsetKey(1<<uint(q.N())) - 1

	// plans[k] holds the safe plans whose leaves are exactly subset k.
	plans := make(map[subsetKey][]*Node)
	for i := 0; i < q.N(); i++ {
		plans[1<<uint(i)] = []*Node{Leaf(i)}
	}

	// Enumerate subsets by population count.
	var keys []subsetKey
	for k := subsetKey(1); k <= full; k++ {
		if k.count() >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].count() < keys[b].count() })

	for _, k := range keys {
		var found []*Node
		seen := make(map[string]bool)
		add := func(node *Node) {
			key := node.String()
			if !seen[key] {
				seen[key] = true
				found = append(found, node)
			}
		}
		// Flat MJoin over the subset's streams.
		if node := Join(leafNodes(k.streams())...); subsetSafe(q, schemes, node) {
			add(node)
		}
		// Binary composition of two smaller safe blocks.
		for a := (k - 1) & k; a > 0; a = (a - 1) & k {
			b := k &^ a
			if a > b {
				continue // each split once
			}
			for _, pa := range plans[a] {
				for _, pb := range plans[b] {
					node := Join(pa, pb)
					if subsetSafe(q, schemes, node) {
						add(node)
					}
				}
			}
		}
		if len(found) > 0 {
			// Keep the cheapest few per subset to bound growth.
			sort.Slice(found, func(i, j int) bool {
				return model.PlanCost(q, schemes, found[i]).Total() < model.PlanCost(q, schemes, found[j]).Total()
			})
			if len(found) > 4 {
				found = found[:4]
			}
			plans[k] = found
		}
	}
	out := plans[full]
	sort.Slice(out, func(i, j int) bool {
		return model.PlanCost(q, schemes, out[i]).Total() < model.PlanCost(q, schemes, out[j]).Total()
	})
	return out, nil
}

// ChooseSafe returns the cheapest safe plan, or an error naming the
// failure when the query is unsafe (per Theorem 4 no plan can exist).
func ChooseSafe(q *query.CJQ, schemes *stream.SchemeSet, model *CostModel) (*Node, error) {
	rep, err := safety.Check(q, schemes)
	if err != nil {
		return nil, err
	}
	if !rep.Safe {
		return nil, fmt.Errorf("plan: query is unsafe under the given punctuation schemes:\n%s", rep.Explain(q))
	}
	cands, err := EnumerateSafe(q, schemes, model)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		// Theorem 4 guarantees the flat MJoin is safe when the query is.
		return Join(leafNodes(rangeInts(q.N()))...), nil
	}
	return cands[0], nil
}

func leafNodes(streams []int) []*Node {
	out := make([]*Node, len(streams))
	for i, s := range streams {
		out[i] = Leaf(s)
	}
	return out
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// subsetSafe checks whether the single operator at the root of node is
// purgeable (children assumed safe already by DP construction), and the
// node's children are joinable (connected).
func subsetSafe(q *query.CJQ, schemes *stream.SchemeSet, node *Node) bool {
	oq, err := OperatorQuery(q, node)
	if err != nil {
		return false
	}
	return safety.BuildGPG(oq, OperatorSchemes(q, schemes, node)).StronglyConnected()
}
