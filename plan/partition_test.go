package plan

import (
	"errors"
	"strings"
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
)

func buildQuery(t *testing.T, build func(*query.Builder) *query.Builder) *query.CJQ {
	t.Helper()
	q, err := build(query.NewBuilder()).Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestFindCoPartitionChain: a chain join equated on one attribute end to
// end has a class spanning all streams; the routing attribute per stream
// is the equated position.
func TestFindCoPartitionChain(t *testing.T) {
	q := buildQuery(t, func(b *query.Builder) *query.Builder {
		return b.
			AddStream(stream.MustSchema("S1", intAttrs("A", "B")...)).
			AddStream(stream.MustSchema("S2", intAttrs("B", "C")...)).
			AddStream(stream.MustSchema("S3", intAttrs("C", "B")...)).
			Join("S1.B", "S2.B").
			Join("S2.B", "S3.B")
	})
	cp, err := FindCoPartition(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1} // S1.B, S2.B, S3.B
	for s, a := range cp.Attrs {
		if a != want[s] {
			t.Fatalf("Attrs = %v, want %v", cp.Attrs, want)
		}
	}
	if got := cp.Describe(q); got != "S1.B = S2.B = S3.B" {
		t.Fatalf("Describe = %q", got)
	}
}

// TestFindCoPartitionStar: a star join (hub equated with every spoke)
// closes transitively into one spanning class.
func TestFindCoPartitionStar(t *testing.T) {
	q := buildQuery(t, func(b *query.Builder) *query.Builder {
		return b.
			AddStream(stream.MustSchema("hub", intAttrs("K", "X")...)).
			AddStream(stream.MustSchema("s1", intAttrs("Y", "K")...)).
			AddStream(stream.MustSchema("s2", intAttrs("K")...)).
			AddStream(stream.MustSchema("s3", intAttrs("Z", "K")...)).
			Join("hub.K", "s1.K").
			Join("hub.K", "s2.K").
			Join("hub.K", "s3.K")
	})
	cp, err := FindCoPartition(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	for s, a := range cp.Attrs {
		if a != want[s] {
			t.Fatalf("Attrs = %v, want %v", cp.Attrs, want)
		}
	}
}

// TestFindCoPartitionRejectsCyclic: the Figure-5 cycle equates three
// distinct attribute pairs, each class spanning only two streams — not
// co-partitionable, and the reason names the widest class.
func TestFindCoPartitionRejectsCyclic(t *testing.T) {
	q, _ := figure5(t)
	_, err := FindCoPartition(q)
	if !errors.Is(err, ErrNotCoPartitionable) {
		t.Fatalf("FindCoPartition = %v, want ErrNotCoPartitionable", err)
	}
	if !strings.Contains(err.Error(), "widest class spans") {
		t.Fatalf("error %q does not explain the widest class", err)
	}
}

// TestFindCoPartitionRejectsPartialChain: a chain joined on different
// attributes per hop has two 2-stream classes; neither spans all three.
func TestFindCoPartitionRejectsPartialChain(t *testing.T) {
	q := buildQuery(t, func(b *query.Builder) *query.Builder {
		return b.
			AddStream(stream.MustSchema("S1", intAttrs("A", "B")...)).
			AddStream(stream.MustSchema("S2", intAttrs("B", "C")...)).
			AddStream(stream.MustSchema("S3", intAttrs("C", "D")...)).
			Join("S1.B", "S2.B").
			Join("S2.C", "S3.C")
	})
	_, err := FindCoPartition(q)
	if !errors.Is(err, ErrNotCoPartitionable) {
		t.Fatalf("FindCoPartition = %v, want ErrNotCoPartitionable", err)
	}
}

// TestFindCoPartitionDeterministic: when several classes span all streams
// the analysis must pick the same one on every call (the class whose
// smallest (stream, attr) member sorts first).
func TestFindCoPartitionDeterministic(t *testing.T) {
	build := func() *query.CJQ {
		return buildQuery(t, func(b *query.Builder) *query.Builder {
			return b.
				AddStream(stream.MustSchema("S1", intAttrs("A", "B")...)).
				AddStream(stream.MustSchema("S2", intAttrs("A", "B")...)).
				Join("S1.B", "S2.B").
				Join("S1.A", "S2.A")
		})
	}
	first, err := FindCoPartition(build())
	if err != nil {
		t.Fatal(err)
	}
	// S1.A sorts before S1.B, so the A class must win.
	if first.Attrs[0] != 0 || first.Attrs[1] != 0 {
		t.Fatalf("Attrs = %v, want the A class [0 0]", first.Attrs)
	}
	for i := 0; i < 10; i++ {
		cp, err := FindCoPartition(build())
		if err != nil {
			t.Fatal(err)
		}
		for s := range cp.Attrs {
			if cp.Attrs[s] != first.Attrs[s] {
				t.Fatalf("run %d chose %v, first run chose %v", i, cp.Attrs, first.Attrs)
			}
		}
	}
}
