// Co-partitioning analysis for intra-query parallel execution.
//
// A query is co-partitionable when some attribute equivalence class of its
// join graph covers every stream: an attribute that the predicates equate
// (transitively) across all n streams, as in a chain or star join on one
// key. Every join result then carries the same value in all attributes of
// the class, so hash-routing each input tuple by its class attribute sends
// all constituent tuples of any result to the same partition. Join state
// split that way is independent across partitions, and a punctuation
// broadcast to every partition purges exactly what it would have purged in
// the unpartitioned operator (Theorem 1 applies partition-locally, since a
// partition's state is the full state restricted to the keys it owns).
package plan

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"punctsafe/query"
)

// ErrNotCoPartitionable reports that no attribute equivalence class of the
// join graph spans all streams of the query. Wrap-returned by
// FindCoPartition with a reason; callers fall back to unpartitioned
// execution.
var ErrNotCoPartitionable = errors.New("plan: query is not co-partitionable")

// CoPartition names, for each stream of the query, the attribute position
// belonging to one equivalence class that the join predicates equate
// across all streams. Attrs[i] is the routing attribute of stream i.
type CoPartition struct {
	Attrs []int
}

// FindCoPartition looks for an attribute equivalence class covering every
// stream of q and returns the per-stream routing attributes. The choice is
// deterministic: classes are compared by their lexicographically smallest
// (stream, attribute) member, and within a class the smallest attribute
// position per stream is used. When no class spans all streams the error
// wraps ErrNotCoPartitionable and names the widest class found.
func FindCoPartition(q *query.CJQ) (*CoPartition, error) {
	n := q.N()
	// Union-find over (stream, attr) nodes that appear in predicates.
	type node struct{ s, a int }
	id := make(map[node]int)
	var nodes []node
	intern := func(s, a int) int {
		k := node{s, a}
		if i, ok := id[k]; ok {
			return i
		}
		i := len(nodes)
		id[k] = i
		nodes = append(nodes, k)
		return i
	}
	var parent []int
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	preds := q.Predicates()
	for _, p := range preds {
		intern(p.Left, p.LeftAttr)
		intern(p.Right, p.RightAttr)
	}
	parent = make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	for _, p := range preds {
		a, b := find(id[node{p.Left, p.LeftAttr}]), find(id[node{p.Right, p.RightAttr}])
		if a != b {
			parent[a] = b
		}
	}
	// Collect classes; within each, the smallest attribute per stream.
	classes := make(map[int]map[int]int) // root -> stream -> attr
	for i, nd := range nodes {
		r := find(i)
		c := classes[r]
		if c == nil {
			c = make(map[int]int)
			classes[r] = c
		}
		if a, ok := c[nd.s]; !ok || nd.a < a {
			c[nd.s] = nd.a
		}
	}
	// Deterministic order: sort class roots by smallest member node.
	roots := make([]int, 0, len(classes))
	for r := range classes {
		roots = append(roots, r)
	}
	least := func(r int) node {
		best := node{s: n, a: -1}
		for i, nd := range nodes {
			if find(i) != r {
				continue
			}
			if nd.s < best.s || (nd.s == best.s && nd.a < best.a) {
				best = nd
			}
		}
		return best
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := least(roots[i]), least(roots[j])
		if a.s != b.s {
			return a.s < b.s
		}
		return a.a < b.a
	})
	widest := 0
	var widestStreams []string
	for _, r := range roots {
		c := classes[r]
		if len(c) == n {
			cp := &CoPartition{Attrs: make([]int, n)}
			for s := 0; s < n; s++ {
				cp.Attrs[s] = c[s]
			}
			return cp, nil
		}
		if len(c) > widest {
			widest = len(c)
			widestStreams = widestStreams[:0]
			for s := range c {
				widestStreams = append(widestStreams, q.Stream(s).Name())
			}
			sort.Strings(widestStreams)
		}
	}
	return nil, fmt.Errorf("%w: no attribute is equated across all %d streams (widest class spans %s)",
		ErrNotCoPartitionable, n, strings.Join(widestStreams, ", "))
}

// PartitionBuckets is the fixed number of hash buckets a query's key
// space is carved into. Routing hashes a tuple's co-partition value into
// one of these buckets; the owner table maps buckets to partitions.
// 64 buckets bound how finely a skewed range can be re-split while
// keeping the table small enough to copy on every routing change.
const PartitionBuckets = 64

// PartitionSpec maps hash buckets to owning partitions. It is the unit
// of routing state shared between the plan layer, the partitioned
// executor, and the ingestion front-end: immutable once published, so
// producers may hash against a snapshot without locks, and replaced
// wholesale (Clone + SplitOwner) when a hot partition splits.
type PartitionSpec struct {
	// Owner[b] is the partition owning hash bucket b.
	Owner [PartitionBuckets]int32
	// Parts is the partition count; every Owner entry is < Parts.
	Parts int
}

// NewPartitionSpec distributes the buckets round-robin over p partitions
// — the static assignment every query starts from.
func NewPartitionSpec(p int) *PartitionSpec {
	ps := &PartitionSpec{Parts: p}
	for b := range ps.Owner {
		ps.Owner[b] = int32(b % p)
	}
	return ps
}

// OwnerOf returns the partition owning the bucket a hash value falls in.
func (ps *PartitionSpec) OwnerOf(h uint64) int {
	return int(ps.Owner[h%PartitionBuckets])
}

// Bucket returns the hash bucket of a hash value.
func (ps *PartitionSpec) Bucket(h uint64) int { return int(h % PartitionBuckets) }

// Clone returns an independent copy.
func (ps *PartitionSpec) Clone() *PartitionSpec {
	cp := *ps
	return &cp
}

// SplitOwner reassigns roughly half of partition hot's buckets — greedily
// by the supplied per-bucket load, heaviest first (LPT) — to a new
// partition numbered Parts, and returns the new spec with Parts+1
// partitions. load[b] is the observed weight of bucket b (stored tuples,
// arrivals — any consistent measure); buckets not owned by hot are
// ignored. It fails when hot owns fewer than two buckets: a single
// bucket cannot be split by routing (one pathological key hashing there
// needs value-level, not range-level, separation).
func (ps *PartitionSpec) SplitOwner(hot int, load [PartitionBuckets]uint64) (*PartitionSpec, error) {
	if hot < 0 || hot >= ps.Parts {
		return nil, fmt.Errorf("plan: split of unknown partition %d (have %d)", hot, ps.Parts)
	}
	owned := make([]int, 0, PartitionBuckets)
	for b, o := range ps.Owner {
		if int(o) == hot {
			owned = append(owned, b)
		}
	}
	if len(owned) < 2 {
		return nil, fmt.Errorf("plan: partition %d owns %d hash bucket(s); cannot split further (key-level skew)", hot, len(owned))
	}
	// Heaviest-first greedy assignment to the lighter side (LPT): near-
	// balanced halves even when one bucket dominates. Ties break toward
	// keeping the bucket on the existing partition, and the sort is made
	// deterministic by bucket number.
	sort.Slice(owned, func(i, j int) bool {
		if load[owned[i]] != load[owned[j]] {
			return load[owned[i]] > load[owned[j]]
		}
		return owned[i] < owned[j]
	})
	next := ps.Clone()
	newPart := int32(ps.Parts)
	next.Parts = ps.Parts + 1
	var keep, moved uint64
	nMoved := 0
	for _, b := range owned {
		if moved < keep {
			next.Owner[b] = newPart
			moved += load[b]
			nMoved++
		} else {
			keep += load[b]
		}
	}
	if nMoved == 0 {
		// Degenerate loads (all zero) kept everything on hot: fall back to
		// moving alternate buckets so both sides own a non-trivial range.
		for i, b := range owned {
			if i%2 == 1 {
				next.Owner[b] = newPart
			}
		}
	}
	return next, nil
}

// Describe renders the routing attributes as "stream.attr" pairs.
func (cp *CoPartition) Describe(q *query.CJQ) string {
	parts := make([]string, len(cp.Attrs))
	for s, a := range cp.Attrs {
		sc := q.Stream(s)
		parts[s] = sc.Name() + "." + sc.Attr(a).Name
	}
	return strings.Join(parts, " = ")
}
