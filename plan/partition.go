// Co-partitioning analysis for intra-query parallel execution.
//
// A query is co-partitionable when some attribute equivalence class of its
// join graph covers every stream: an attribute that the predicates equate
// (transitively) across all n streams, as in a chain or star join on one
// key. Every join result then carries the same value in all attributes of
// the class, so hash-routing each input tuple by its class attribute sends
// all constituent tuples of any result to the same partition. Join state
// split that way is independent across partitions, and a punctuation
// broadcast to every partition purges exactly what it would have purged in
// the unpartitioned operator (Theorem 1 applies partition-locally, since a
// partition's state is the full state restricted to the keys it owns).
package plan

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"punctsafe/query"
)

// ErrNotCoPartitionable reports that no attribute equivalence class of the
// join graph spans all streams of the query. Wrap-returned by
// FindCoPartition with a reason; callers fall back to unpartitioned
// execution.
var ErrNotCoPartitionable = errors.New("plan: query is not co-partitionable")

// CoPartition names, for each stream of the query, the attribute position
// belonging to one equivalence class that the join predicates equate
// across all streams. Attrs[i] is the routing attribute of stream i.
type CoPartition struct {
	Attrs []int
}

// FindCoPartition looks for an attribute equivalence class covering every
// stream of q and returns the per-stream routing attributes. The choice is
// deterministic: classes are compared by their lexicographically smallest
// (stream, attribute) member, and within a class the smallest attribute
// position per stream is used. When no class spans all streams the error
// wraps ErrNotCoPartitionable and names the widest class found.
func FindCoPartition(q *query.CJQ) (*CoPartition, error) {
	n := q.N()
	// Union-find over (stream, attr) nodes that appear in predicates.
	type node struct{ s, a int }
	id := make(map[node]int)
	var nodes []node
	intern := func(s, a int) int {
		k := node{s, a}
		if i, ok := id[k]; ok {
			return i
		}
		i := len(nodes)
		id[k] = i
		nodes = append(nodes, k)
		return i
	}
	var parent []int
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	preds := q.Predicates()
	for _, p := range preds {
		intern(p.Left, p.LeftAttr)
		intern(p.Right, p.RightAttr)
	}
	parent = make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	for _, p := range preds {
		a, b := find(id[node{p.Left, p.LeftAttr}]), find(id[node{p.Right, p.RightAttr}])
		if a != b {
			parent[a] = b
		}
	}
	// Collect classes; within each, the smallest attribute per stream.
	classes := make(map[int]map[int]int) // root -> stream -> attr
	for i, nd := range nodes {
		r := find(i)
		c := classes[r]
		if c == nil {
			c = make(map[int]int)
			classes[r] = c
		}
		if a, ok := c[nd.s]; !ok || nd.a < a {
			c[nd.s] = nd.a
		}
	}
	// Deterministic order: sort class roots by smallest member node.
	roots := make([]int, 0, len(classes))
	for r := range classes {
		roots = append(roots, r)
	}
	least := func(r int) node {
		best := node{s: n, a: -1}
		for i, nd := range nodes {
			if find(i) != r {
				continue
			}
			if nd.s < best.s || (nd.s == best.s && nd.a < best.a) {
				best = nd
			}
		}
		return best
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := least(roots[i]), least(roots[j])
		if a.s != b.s {
			return a.s < b.s
		}
		return a.a < b.a
	})
	widest := 0
	var widestStreams []string
	for _, r := range roots {
		c := classes[r]
		if len(c) == n {
			cp := &CoPartition{Attrs: make([]int, n)}
			for s := 0; s < n; s++ {
				cp.Attrs[s] = c[s]
			}
			return cp, nil
		}
		if len(c) > widest {
			widest = len(c)
			widestStreams = widestStreams[:0]
			for s := range c {
				widestStreams = append(widestStreams, q.Stream(s).Name())
			}
			sort.Strings(widestStreams)
		}
	}
	return nil, fmt.Errorf("%w: no attribute is equated across all %d streams (widest class spans %s)",
		ErrNotCoPartitionable, n, strings.Join(widestStreams, ", "))
}

// Describe renders the routing attributes as "stream.attr" pairs.
func (cp *CoPartition) Describe(q *query.CJQ) string {
	parts := make([]string, len(cp.Attrs))
	for s, a := range cp.Attrs {
		sc := q.Stream(s)
		parts[s] = sc.Name() + "." + sc.Attr(a).Name
	}
	return strings.Join(parts, " = ")
}
