package plan

import (
	"math/rand"
	"testing"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

func intAttrs(names ...string) []stream.Attribute {
	out := make([]stream.Attribute, len(names))
	for i, n := range names {
		out[i] = stream.Attribute{Name: n, Kind: stream.KindInt}
	}
	return out
}

// figure5 builds the cyclic 3-way query of Figures 5/7/8 with Example 3's
// scheme set.
func figure5(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(stream.MustSchema("S1", intAttrs("A", "B")...)).
		AddStream(stream.MustSchema("S2", intAttrs("B", "C")...)).
		AddStream(stream.MustSchema("S3", intAttrs("A", "C")...)).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
	return q, schemes
}

// TestFigure7PlanShapes is the paper's central plan-shape observation:
// for the Figure 5 query, the single MJoin plan is safe while NO binary
// tree plan is.
func TestFigure7PlanShapes(t *testing.T) {
	q, schemes := figure5(t)

	mjoin := Join(Leaf(0), Leaf(1), Leaf(2))
	safe, _, err := CheckPlan(q, schemes, mjoin)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Fatal("single MJoin plan must be safe")
	}

	// All three binary tree shapes (up to left-right symmetry of the
	// lower join) must be unsafe.
	trees := []*Node{
		Join(Join(Leaf(0), Leaf(1)), Leaf(2)), // (S1 x S2) x S3 — Figure 7
		Join(Join(Leaf(1), Leaf(2)), Leaf(0)),
		Join(Join(Leaf(0), Leaf(2)), Leaf(1)),
	}
	for _, tree := range trees {
		safe, reports, err := CheckPlan(q, schemes, tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Render(q), err)
		}
		if safe {
			t.Errorf("binary tree %s must be unsafe (Figure 7)", tree.Render(q))
		}
		// The lower operator must be the unpurgeable one.
		if reports[0].Purgeable {
			t.Errorf("%s: lower binary join must not be purgeable", tree.Render(q))
		}
	}
}

// TestFigure7Enumeration: the safe-plan enumerator must return only the
// flat MJoin for the Figure 5 query.
func TestFigure7Enumeration(t *testing.T) {
	q, schemes := figure5(t)
	plans, err := EnumerateSafe(q, schemes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		var rendered []string
		for _, p := range plans {
			rendered = append(rendered, p.Render(q))
		}
		t.Fatalf("want exactly the MJoin plan, got %d: %v", len(plans), rendered)
	}
	if len(plans[0].Children) != 3 {
		t.Fatalf("the only safe plan must be the 3-way MJoin, got %s", plans[0].Render(q))
	}
}

// TestBinaryTreeSafeWhenFullyPunctuated: punctuating every join attribute
// on every stream makes every plan shape safe, including binary trees.
func TestBinaryTreeSafeWhenFullyPunctuated(t *testing.T) {
	q, _ := figure5(t)
	schemes := stream.NewSchemeSet()
	for i := 0; i < q.N(); i++ {
		for _, a := range q.JoinAttrs(i) {
			mask := make([]bool, q.Stream(i).Arity())
			mask[a] = true
			schemes.Add(stream.MustScheme(q.Stream(i).Name(), mask...))
		}
	}
	for _, tree := range []*Node{
		Join(Join(Leaf(0), Leaf(1)), Leaf(2)),
		Join(Leaf(0), Leaf(1), Leaf(2)),
		Join(Leaf(2), Join(Leaf(0), Leaf(1))),
	} {
		safe, _, err := CheckPlan(q, schemes, tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Render(q), err)
		}
		if !safe {
			t.Errorf("%s should be safe with full punctuation", tree.Render(q))
		}
	}
	plans, err := EnumerateSafe(q, schemes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Errorf("expected several safe plans, got %d", len(plans))
	}
}

// TestValidateRejectsMalformedPlans exercises the structural validation.
func TestValidateRejectsMalformedPlans(t *testing.T) {
	q, _ := figure5(t)
	cases := []struct {
		name string
		node *Node
	}{
		{"missing stream", Join(Leaf(0), Leaf(1))},
		{"duplicate stream", Join(Leaf(0), Leaf(0), Leaf(1), Leaf(2))},
		{"out of range", Join(Leaf(0), Leaf(1), Leaf(5))},
		{"single child", Join(Join(Leaf(0)), Leaf(1), Leaf(2))},
	}
	for _, c := range cases {
		if err := c.node.Validate(q); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
	good := Join(Leaf(0), Leaf(1), Leaf(2))
	if err := good.Validate(q); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestDerivedSchemes: schemes lift onto intermediate outputs at the right
// column offsets.
func TestDerivedSchemes(t *testing.T) {
	q, schemes := figure5(t)
	sub := Join(Leaf(0), Leaf(1)) // output columns: S1_A S1_B S2_B S2_C
	lifted := DerivedSchemes(q, schemes, sub)
	if len(lifted) != 2 {
		t.Fatalf("want 2 lifted schemes, got %d", len(lifted))
	}
	// S1(_,+) lifts to (_,+,_,_); S2(_,+) lifts to (_,_,_,+).
	wantMasks := map[string]bool{"_+__": true, "___+": true}
	for _, s := range lifted {
		mask := ""
		for _, p := range s.Punctuatable {
			if p {
				mask += "+"
			} else {
				mask += "_"
			}
		}
		if !wantMasks[mask] {
			t.Errorf("unexpected lifted mask %q", mask)
		}
		delete(wantMasks, mask)
	}
}

// TestChooseSafeUnsafeQuery: ChooseSafe must refuse an unsafe query with
// an explanation rather than return a plan.
func TestChooseSafeUnsafeQuery(t *testing.T) {
	q, _ := figure5(t)
	if _, err := ChooseSafe(q, stream.NewSchemeSet(), nil); err == nil {
		t.Fatal("ChooseSafe must fail for an unsafe query")
	}
	_, schemes := figure5(t)
	node, err := ChooseSafe(q, schemes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Validate(q); err != nil {
		t.Fatalf("chosen plan invalid: %v", err)
	}
	safe, _, err := CheckPlan(q, schemes, node)
	if err != nil || !safe {
		t.Fatalf("chosen plan must be safe (err=%v)", err)
	}
}

// TestTheorem2Property: on random instances, some safe plan exists
// (enumerator finds one) iff the query-level check says safe. The
// enumerator's plan space includes the flat MJoin, which Theorem 4
// guarantees is safe whenever any plan is, so the equivalence is exact.
func TestTheorem2Property(t *testing.T) {
	rng := rand.New(rand.NewSource(2006))
	for trial := 0; trial < 300; trial++ {
		q, schemes := randomInstance(rng)
		rep, err := safety.Check(q, schemes)
		if err != nil {
			t.Fatal(err)
		}
		plans, err := EnumerateSafe(q, schemes, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Safe != (len(plans) > 0) {
			t.Fatalf("trial %d: query safe=%v but enumerator found %d plans\nquery %s schemes %s",
				trial, rep.Safe, len(plans), q, schemes)
		}
		// Every returned plan must pass the Definition 2 check.
		for _, p := range plans {
			ok, _, err := CheckPlan(q, schemes, p)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !ok {
				t.Fatalf("trial %d: enumerator returned unsafe plan %s", trial, p.Render(q))
			}
		}
	}
}

// randomInstance mirrors the safety package's generator (kept local to
// avoid exporting test helpers): random connected query + schemes.
func randomInstance(rng *rand.Rand) (*query.CJQ, *stream.SchemeSet) {
	n := 2 + rng.Intn(4) // 2..5 streams (plan enumeration is exponential)
	schemas := make([]*stream.Schema, n)
	for i := range schemas {
		arity := 2 + rng.Intn(2)
		attrs := make([]stream.Attribute, arity)
		for j := range attrs {
			attrs[j] = stream.Attribute{Name: string(rune('A' + j)), Kind: stream.KindInt}
		}
		schemas[i] = stream.MustSchema("S"+string(rune('0'+i)), attrs...)
	}
	var preds []query.Predicate
	perm := rng.Perm(n)
	for k := 1; k < n; k++ {
		u, v := perm[rng.Intn(k)], perm[k]
		preds = append(preds, query.Predicate{
			Left: u, LeftAttr: rng.Intn(schemas[u].Arity()),
			Right: v, RightAttr: rng.Intn(schemas[v].Arity()),
		})
	}
	for k := rng.Intn(n); k > 0; k-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			preds = append(preds, query.Predicate{
				Left: u, LeftAttr: rng.Intn(schemas[u].Arity()),
				Right: v, RightAttr: rng.Intn(schemas[v].Arity()),
			})
		}
	}
	q, err := query.NewCJQ(schemas, preds)
	if err != nil {
		panic(err)
	}
	set := stream.NewSchemeSet()
	for i := 0; i < n; i++ {
		for s := rng.Intn(3); s > 0; s-- {
			arity := schemas[i].Arity()
			mask := make([]bool, arity)
			ja := q.JoinAttrs(i)
			if len(ja) > 0 && rng.Intn(4) != 0 {
				mask[ja[rng.Intn(len(ja))]] = true
			} else {
				mask[rng.Intn(arity)] = true
			}
			if rng.Intn(3) == 0 {
				mask[rng.Intn(arity)] = true
			}
			set.Add(stream.MustScheme(schemas[i].Name(), mask...))
		}
	}
	return q, set
}
