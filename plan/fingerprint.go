package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"punctsafe/query"
	"punctsafe/stream"
)

// Fingerprint returns a stable identity for the physical join subtree a
// (query, scheme set, plan, config) tuple would execute. Two registered
// queries with equal fingerprints evaluate byte-for-byte identical
// operator trees over the same input streams — the engine may run one
// physical tree and fan its output out to both.
//
// The canonical form normalizes away presentation differences that do
// not change execution:
//
//   - stream listing order: streams are re-ranked by their schema
//     rendering (names are unique within a query), and the plan tree and
//     predicates are rewritten against the canonical ranks;
//   - predicate listing/orientation: equi-join predicates are collapsed
//     into equality classes over (stream, attribute) terms, so
//     {A.x=B.y, B.y=C.z} and {A.x=C.z, C.z=B.y} fingerprint equally;
//   - scheme listing order: each stream's punctuation schemes sort
//     before rendering.
//
// Join-node child order is preserved: it determines physical state
// layout, emission order, and per-operator stats, all of which must be
// identical for subscribers to share a tree. The engine folds every
// execution-relevant knob that is not visible here (purge cadence,
// punctuation lifespan, error handling, SQL filters, ...) into tag.
func Fingerprint(q *query.CJQ, schemes *stream.SchemeSet, root *Node, tag string) string {
	sum := sha256.Sum256([]byte(Canonical(q, schemes, root, tag)))
	return hex.EncodeToString(sum[:16])
}

// Canonical renders the normalized form Fingerprint hashes. Exposed so
// tests and diagnostics can explain why two queries do (or do not)
// share.
func Canonical(q *query.CJQ, schemes *stream.SchemeSet, root *Node, tag string) string {
	n := q.N()
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = q.Stream(i).String()
	}
	perm := make([]int, n) // perm[canonical rank] = original index
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return labels[perm[a]] < labels[perm[b]] })
	rank := make([]int, n) // rank[original index] = canonical rank
	for c, o := range perm {
		rank[o] = c
	}

	var b strings.Builder
	b.WriteString("streams:")
	for _, o := range perm {
		b.WriteByte('|')
		b.WriteString(labels[o])
	}

	b.WriteString(";classes:")
	b.WriteString(equalityClasses(q, rank))

	b.WriteString(";plan:")
	writeCanonPlan(&b, root, rank)

	b.WriteString(";schemes:")
	for _, o := range perm {
		ss := schemes.ForStream(q.Stream(o).Name())
		strs := make([]string, len(ss))
		for i, s := range ss {
			strs[i] = s.String()
		}
		sort.Strings(strs)
		b.WriteByte('{')
		b.WriteString(strings.Join(strs, ","))
		b.WriteByte('}')
	}

	b.WriteString(";tag:")
	b.WriteString(tag)
	return b.String()
}

// equalityClasses merges the query's equi-join predicates into connected
// components of (canonical stream rank, attribute) terms and renders
// them sorted, so predicate listing order and transitive phrasing do not
// affect the fingerprint.
func equalityClasses(q *query.CJQ, rank []int) string {
	type term struct{ s, a int }
	parent := make(map[term]term)
	var find func(t term) term
	find = func(t term) term {
		p, ok := parent[t]
		if !ok || p == t {
			parent[t] = t
			return t
		}
		r := find(p)
		parent[t] = r
		return r
	}
	union := func(a, b term) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range q.Predicates() {
		union(term{rank[p.Left], p.LeftAttr}, term{rank[p.Right], p.RightAttr})
	}
	classes := make(map[term][]string)
	for t := range parent {
		r := find(t)
		classes[r] = append(classes[r], fmt.Sprintf("%d.%d", t.s, t.a))
	}
	rendered := make([]string, 0, len(classes))
	for _, members := range classes {
		sort.Strings(members)
		rendered = append(rendered, "{"+strings.Join(members, ",")+"}")
	}
	sort.Strings(rendered)
	return strings.Join(rendered, "")
}

func writeCanonPlan(b *strings.Builder, n *Node, rank []int) {
	if n.IsLeaf() {
		fmt.Fprintf(b, "%d", rank[n.Stream])
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte('*')
		}
		writeCanonPlan(b, c, rank)
	}
	b.WriteByte(')')
}
