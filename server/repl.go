package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Replication feed, primary side.
//
// The feed is a record stream appended in the engine's ingress order
// (the ingest tap fires inside each commit's critical section, so
// append order IS the order the runtime saw the data):
//
//	0x01 frame:   srcLen src startOffset frameLen frameBytes
//	              — one committed wire-ingest batch; the bytes occupy
//	              [startOffset, startOffset+frameLen) on that source.
//	0x02 barrier: n { srcLen src offset }
//	              — the primary checkpointed at this per-source cut;
//	              the standby checkpoints locally and acks.
//	0x03 end:     the primary shut down gracefully; the stream is
//	              complete (a missing end record means primary loss).
//
// The standby replies with ack records on the same connection:
//
//	n { srcLen src offset }
//
// naming the offsets it has made durable. The primary holds producer
// acks down to the minimum acked floor across attached standbys.
const (
	recFrame   = 0x01
	recBarrier = 0x02
	recEnd     = 0x03
)

// replSender is one attached standby's view of the feed: a cursor into
// the log and the offsets it has acked.
type replSender struct {
	pos   int64 // next feed byte to send
	acked map[string]int64
	gone  bool // evicted (lagged past the buffer bound) or detached
}

// replLog is the bounded in-memory replication backlog. Appends happen
// on the ingest hot path (under the runtime's tap serialization), so
// they are dropped — O(1) — while no standby is attached.
type replLog struct {
	maxBuf int

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	base    int64 // feed position of buf[0]
	closed  bool
	senders map[*replSender]struct{}
}

func newReplLog(maxBuf int) *replLog {
	l := &replLog{maxBuf: maxBuf, senders: make(map[*replSender]struct{})}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// appendFrame is the engine's IngestTap: one committed batch of raw
// wire frames, in ingress order.
func (l *replLog) appendFrame(source string, frames []byte, start, end int64) {
	rec := make([]byte, 0, len(frames)+len(source)+2+3*binary.MaxVarintLen64)
	rec = append(rec, recFrame)
	rec = binary.AppendUvarint(rec, uint64(len(source)))
	rec = append(rec, source...)
	rec = binary.AppendUvarint(rec, uint64(start))
	rec = binary.AppendUvarint(rec, uint64(len(frames)))
	rec = append(rec, frames...)
	l.append(rec)
}

// appendBarrier records a completed primary checkpoint at the given
// per-source cut.
func (l *replLog) appendBarrier(offsets map[string]int64) {
	rec := append([]byte{recBarrier}, binary.AppendUvarint(nil, uint64(len(offsets)))...)
	for _, src := range sortedKeys(offsets) {
		rec = binary.AppendUvarint(rec, uint64(len(src)))
		rec = append(rec, src...)
		rec = binary.AppendUvarint(rec, uint64(offsets[src]))
	}
	l.append(rec)
}

func (l *replLog) appendEnd() { l.append([]byte{recEnd}) }

func (l *replLog) append(rec []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || len(l.senders) == 0 {
		return // nobody attached: feed positions simply don't advance
	}
	l.buf = append(l.buf, rec...)
	// Bound the backlog: trim bytes every live sender has consumed,
	// then evict the most-lagging sender until the rest fits. An
	// evicted standby reconnects and re-seeds from a fresh snapshot.
	for len(l.buf) > l.maxBuf {
		min := l.base + int64(len(l.buf))
		var worst *replSender
		for s := range l.senders {
			if s.gone {
				continue
			}
			if s.pos < min {
				min = s.pos
			}
			if worst == nil || s.pos < worst.pos {
				worst = s
			}
		}
		if trim := min - l.base; trim > 0 {
			l.buf = append(l.buf[:0], l.buf[trim:]...)
			l.base = min
			continue
		}
		if worst == nil {
			l.base += int64(len(l.buf))
			l.buf = l.buf[:0]
			break
		}
		worst.gone = true
	}
	l.cond.Broadcast()
}

// attach registers a standby at the current feed head. Attach happens
// BEFORE the snapshot is encoded, so records between attach and the
// snapshot cut duplicate snapshot state — the standby discards them by
// offset. There is never a gap.
func (l *replLog) attach() *replSender {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &replSender{pos: l.base + int64(len(l.buf)), acked: make(map[string]int64)}
	l.senders[s] = struct{}{}
	return s
}

func (l *replLog) detach(s *replSender) {
	l.mu.Lock()
	s.gone = true
	delete(l.senders, s)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// ackFloor returns the minimum acked offset for source across attached
// standbys, and whether any standby is attached (no standby = no
// constraint on producer acks).
func (l *replLog) ackFloor(source string) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	floor, held := int64(0), false
	for s := range l.senders {
		if s.gone {
			continue
		}
		off := s.acked[source] // zero until first ack: hold everything
		if !held || off < floor {
			floor, held = off, true
		}
	}
	return floor, held
}

func (l *replLog) setAcked(s *replSender, offsets map[string]int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for src, off := range offsets {
		if off > s.acked[src] {
			s.acked[src] = off
		}
	}
}

// pump streams the feed from the sender's cursor to the connection,
// returning when the sender is evicted, the log closes, or the write
// fails (conn closed by Kill/Shutdown or by the peer).
func (l *replLog) pump(s *replSender, c net.Conn) error {
	for {
		l.mu.Lock()
		for !s.gone && !l.closed && s.pos >= l.base+int64(len(l.buf)) {
			l.cond.Wait()
		}
		if s.gone || l.closed {
			l.mu.Unlock()
			return fmt.Errorf("server: replica feed ended")
		}
		if s.pos < l.base {
			// Evicted by a trim racing ahead of the gone flag.
			l.mu.Unlock()
			return fmt.Errorf("server: replica evicted (lagged past %d buffered bytes)", l.maxBuf)
		}
		chunk := append([]byte(nil), l.buf[s.pos-l.base:]...)
		l.mu.Unlock()
		if _, err := c.Write(chunk); err != nil {
			return err
		}
		l.mu.Lock()
		s.pos += int64(len(chunk))
		l.mu.Unlock()
		l.cond.Broadcast()
	}
}

// waitDrained blocks until every live sender has pumped the whole feed
// (graceful shutdown: the end record must reach the standbys), bounded
// by timeout.
func (l *replLog) waitDrained(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		drained := true
		end := l.base + int64(len(l.buf))
		for s := range l.senders {
			if !s.gone && s.pos < end {
				drained = false
			}
		}
		l.mu.Unlock()
		if drained {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func (l *replLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// serveReplica attaches one standby: cursor first, then a consistent
// snapshot (so the snapshot cut is always covered by cursor position),
// then the live feed. A second goroutine consumes the standby's ack
// records, which gate producer acks (see CheckpointNow).
func (s *Server) serveReplica(c net.Conn, br *bufio.Reader, h hello) {
	if s.repl == nil {
		s.reject(c, fmt.Errorf("server: replication not enabled"), "")
		return
	}
	if s.standby.Load() {
		s.reject(c, fmt.Errorf("%w: standby replicating %s", ErrNotPrimary, s.cfg.ReplicaOf), s.primaryRedirect())
		return
	}
	snd := s.repl.attach()
	defer s.repl.detach(snd)

	s.ckptMu.Lock()
	p := s.pack()
	var body []byte
	var err error
	if p == nil || p.rt == nil {
		err = fmt.Errorf("server: no runtime to snapshot")
	} else {
		body, _, err = s.encodeCheckpoint(p)
	}
	s.ckptMu.Unlock()
	if err != nil {
		s.reject(c, fmt.Errorf("server: snapshot: %v", err), "")
		return
	}

	reply := appendOK(nil, s.epoch.Load())
	adv := s.advertise()
	reply = binary.AppendUvarint(reply, uint64(len(adv)))
	reply = append(reply, adv...)
	reply = binary.AppendUvarint(reply, uint64(len(body)))
	reply = append(reply, body...)
	if _, err := c.Write(reply); err != nil {
		s.dropConn(c)
		return
	}
	s.cfg.Logf("punctserve: standby attached (snapshot %d bytes, epoch %d)", len(body), s.epoch.Load())

	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			offsets, err := readAckRecord(br)
			if err != nil {
				c.Close() // ack side died: tear the feed down too
				return
			}
			s.repl.setAcked(snd, offsets)
		}
	}()

	if err := s.repl.pump(snd, c); err != nil && !s.teardownErr() {
		s.cfg.Logf("punctserve: standby detached: %v", err)
	}
	s.dropConn(c)
	<-ackDone
}

// readAckRecord parses one standby ack: n { srcLen src offset }.
func readAckRecord(br *bufio.Reader) (map[string]int64, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxHandshakeName {
		return nil, fmt.Errorf("server: ack source count %d out of range", n)
	}
	offsets := make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		src, err := readShortString(br)
		if err != nil {
			return nil, err
		}
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		offsets[src] = int64(off)
	}
	return offsets, nil
}

// appendAckRecord encodes a standby ack record.
func appendAckRecord(dst []byte, offsets map[string]int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(offsets)))
	for _, src := range sortedKeys(offsets) {
		dst = binary.AppendUvarint(dst, uint64(len(src)))
		dst = append(dst, src...)
		dst = binary.AppendUvarint(dst, uint64(offsets[src]))
	}
	return dst
}

// readFeedRecord parses one primary feed record, returning its type and
// (for frames) the source, start offset, and raw frame bytes, or (for
// barriers) the per-source cut.
type feedRecord struct {
	kind    byte
	source  string
	start   int64
	frames  []byte
	offsets map[string]int64
}

func readFeedRecord(br *bufio.Reader) (feedRecord, error) {
	var rec feedRecord
	kind, err := br.ReadByte()
	if err != nil {
		return rec, err
	}
	rec.kind = kind
	switch kind {
	case recFrame:
		if rec.source, err = readShortString(br); err != nil {
			return rec, fmt.Errorf("server: feed frame source: %w", err)
		}
		start, err := binary.ReadUvarint(br)
		if err != nil {
			return rec, fmt.Errorf("server: feed frame offset: %w", err)
		}
		rec.start = int64(start)
		if rec.frames, err = readLenBytes(br); err != nil {
			return rec, fmt.Errorf("server: feed frame bytes: %w", err)
		}
		return rec, nil
	case recBarrier:
		if rec.offsets, err = readAckRecord(br); err != nil {
			return rec, fmt.Errorf("server: feed barrier: %w", err)
		}
		return rec, nil
	case recEnd:
		return rec, nil
	default:
		return rec, fmt.Errorf("server: bad feed record type 0x%02x", kind)
	}
}
