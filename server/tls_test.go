package server_test

// Transport security end to end: the serving listener wrapped in TLS
// (as punctserve -tls-cert does), clients dialing through Dialer.TLS,
// and the shared-token auth gate rejecting mismatched tokens with the
// typed terminal ErrUnauthorized for every role.

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"punctsafe/server"
	"punctsafe/stream"
	"punctsafe/workload"
)

// selfSignedCert builds an in-memory certificate for the test listener;
// clients verify nothing (InsecureSkipVerify), which still exercises
// the full TLS handshake and record layer over the socket.
func selfSignedCert(t *testing.T) tls.Certificate {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "punctserve-test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     []string{"localhost"},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
}

func TestTLSAndAuthToken(t *testing.T) {
	const token = "s3cret-tok3n"
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	sock := filepath.Join(t.TempDir(), "s.sock")

	item, bid := workload.AuctionSchemas()
	cert := selfSignedCert(t)
	srv, err := server.New(server.Config{
		Listener:  tls.NewListener(listenUnix(t, sock), &tls.Config{Certificates: []tls.Certificate{cert}}),
		Build:     buildAuction,
		Schemas:   []*stream.Schema{item, bid},
		AuthToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}

	secureDialer := func(tok string) *server.Dialer {
		d := testDialer(sock)
		d.TLS = &tls.Config{InsecureSkipVerify: true}
		d.AuthToken = tok
		return d
	}

	// The full data path works over TLS with the right token.
	prod, err := secureDialer(token).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, srv, prod, "feed")
	sub, err := secureDialer(token).Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, errc := collectNAsync(sub, len(want))
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	requireSameStream(t, "tls", deliveryStrings(<-got), want)
	if h, err := secureDialer(token).Probe(); err != nil || h.Role != "primary" {
		t.Fatalf("probe over TLS: %+v, %v", h, err)
	}

	// Wrong and missing tokens are terminal for every role: one dial,
	// typed ErrUnauthorized, no retry loop.
	for _, tok := range []string{"wrong", ""} {
		dl := secureDialer(tok)
		var dials atomic.Int64
		dl.DialAddr = func(addr string) (net.Conn, error) {
			dials.Add(1)
			return net.Dial("unix", strings.TrimPrefix(addr, "unix://"))
		}
		if _, err := dl.Producer("feed2", item, bid); !contains(err, server.ErrUnauthorized) {
			t.Fatalf("producer with token %q: want ErrUnauthorized, got %v", tok, err)
		}
		if _, err := dl.Subscribe(testQuery); !contains(err, server.ErrUnauthorized) {
			t.Fatalf("subscriber with token %q: want ErrUnauthorized, got %v", tok, err)
		}
		if _, err := dl.Probe(); !contains(err, server.ErrUnauthorized) {
			t.Fatalf("probe with token %q: want ErrUnauthorized, got %v", tok, err)
		}
		if n := dials.Load(); n != 3 {
			t.Fatalf("3 terminal rejections took %d dials, want exactly 3", n)
		}
	}

	prod.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-errcDrain(sub); err != nil {
		t.Fatalf("drain after shutdown: %v", err)
	}
}

// errcDrain reads the subscriber to its end marker on a goroutine.
func errcDrain(sub *server.Subscriber) <-chan error {
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Collect()
		errc <- err
	}()
	return errc
}
