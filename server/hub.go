package server

import (
	"fmt"
	"sync"

	"punctsafe/stream"
)

// SlowPolicy selects what the hub does with a subscriber whose pending
// backlog exceeds Config.QueueLimit.
type SlowPolicy int

const (
	// SlowBlock applies backpressure: delivery (and therefore the
	// query's worker) waits until the slow subscriber catches up or
	// disconnects. Zero loss, at the cost of coupling the pipeline to
	// its slowest consumer.
	SlowBlock SlowPolicy = iota
	// SlowDrop skips the oldest pending deliveries for that subscriber,
	// counting each skip in the runtime's dead-letter queue under the
	// query's name. The subscriber stays connected with gaps.
	SlowDrop
	// SlowDisconnect severs the slow subscriber; it may reconnect and
	// resume within the retention window.
	SlowDisconnect
)

func (p SlowPolicy) String() string {
	switch p {
	case SlowBlock:
		return "block"
	case SlowDrop:
		return "drop"
	case SlowDisconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("SlowPolicy(%d)", int(p))
	}
}

// ParseSlowPolicy maps a CLI string to a policy.
func ParseSlowPolicy(s string) (SlowPolicy, error) {
	switch s {
	case "block":
		return SlowBlock, nil
	case "drop":
		return SlowDrop, nil
	case "disconnect":
		return SlowDisconnect, nil
	default:
		return SlowBlock, fmt.Errorf("unknown slow-consumer policy %q (block, drop, disconnect)", s)
	}
}

// hubEntry is one retained delivery: the query output (tuple or
// punctuation) and its 1-based delivery sequence number.
type hubEntry struct {
	seq  uint64
	elem stream.Element
}

// subCursor is one subscriber's position in a hub: cursor is the next
// sequence it needs. The hub owns all fields under its mutex; the
// subscriber goroutine reads through hub methods only.
type subCursor struct {
	cursor  uint64
	dropped uint64 // deliveries skipped under SlowDrop
	err     error  // set when the hub severs the subscriber
}

// hub fans one query's delivery stream out to its subscribers. It
// retains the last `retain` deliveries so reconnecting subscribers can
// resume exactly where they left off, and it is the unit the server
// checkpoint persists (entries at or below the checkpoint cut) so a
// crash cannot strand a lagging subscriber: everything the engine will
// not replay is in the snapshot, everything newer the engine replays
// deterministically with identical sequence numbers.
type hub struct {
	name  string
	codec *stream.Codec

	mu         sync.Mutex
	cond       *sync.Cond
	entries    []hubEntry // retained deliveries, ascending seq
	next       uint64     // seq the next delivery will get
	retain     int
	queueLimit int
	policy     SlowPolicy
	subs       map[*subCursor]struct{}
	ended      bool // graceful end-of-stream: drain then stop
	killed     bool // abrupt stop: unblock everything now

	// onDrop reports SlowDrop skips (outside the hub lock).
	onDrop func(query string, elem stream.Element, seq uint64)
}

func newHub(name string, schema *stream.Schema, retain, queueLimit int, policy SlowPolicy) *hub {
	h := &hub{
		name:       name,
		codec:      stream.NewCodec(schema),
		next:       1,
		retain:     retain,
		queueLimit: queueLimit,
		policy:     policy,
		subs:       make(map[*subCursor]struct{}),
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// seed installs a restored retention ring: entries are the snapshot's
// retained deliveries (ascending, all ≤ cut) and the next live delivery
// will be cut+1 — the engine's restored delivery counter guarantees the
// replayed outputs pick up numbering exactly there.
func (h *hub) seed(entries []hubEntry, cut uint64) {
	h.mu.Lock()
	h.entries = entries
	h.next = cut + 1
	h.mu.Unlock()
}

// publish is the query's delivery hook: called by whatever goroutine
// drives the query, in delivery order, with the engine-assigned seq.
// Under SlowBlock it may wait for slow subscribers.
func (h *hub) publish(seq uint64, e stream.Element) {
	type drop struct {
		elem stream.Element
		seq  uint64
	}
	var drops []drop
	h.mu.Lock()
	if seq < h.next {
		// Replay below the restored cut: subscribers that survived the
		// crash already hold these entries via the snapshot seed.
		h.mu.Unlock()
		return
	}
	if h.policy == SlowBlock {
		for !h.killed && h.slowest() >= uint64(h.queueLimit) {
			h.cond.Wait()
		}
	}
	if h.killed {
		h.mu.Unlock()
		return
	}
	h.entries = append(h.entries, hubEntry{seq: seq, elem: e})
	h.next = seq + 1
	switch h.policy {
	case SlowDrop:
		for s := range h.subs {
			for lag(h.next, s.cursor) > uint64(h.queueLimit) {
				if h.onDrop != nil {
					drops = append(drops, drop{elem: h.entryAt(s.cursor), seq: s.cursor})
				}
				s.cursor++
				s.dropped++
			}
		}
	case SlowDisconnect:
		for s := range h.subs {
			if l := lag(h.next, s.cursor); l > uint64(h.queueLimit) {
				s.err = fmt.Errorf("%s: subscriber lagged %d > %d deliveries", h.name, l, h.queueLimit)
				delete(h.subs, s)
			}
		}
	}
	if len(h.entries) > h.retain {
		h.entries = append(h.entries[:0], h.entries[len(h.entries)-h.retain:]...)
	}
	h.mu.Unlock()
	h.cond.Broadcast()
	for _, d := range drops {
		h.onDrop(h.name, d.elem, d.seq)
	}
}

// lag is the pending backlog of a cursor. A cursor AHEAD of next is
// legal — after a crash-restore, a surviving subscriber waits out the
// engine's deterministic replay — and has zero backlog, not an
// underflowed one.
func lag(next, cursor uint64) uint64 {
	if cursor >= next {
		return 0
	}
	return next - cursor
}

// slowest returns the largest pending backlog across subscribers
// (callers hold h.mu).
func (h *hub) slowest() uint64 {
	var worst uint64
	for s := range h.subs {
		if l := lag(h.next, s.cursor); l > worst {
			worst = l
		}
	}
	return worst
}

// entryAt returns the retained entry with the given seq (callers hold
// h.mu and guarantee it is retained).
func (h *hub) entryAt(seq uint64) stream.Element {
	floor := h.next - uint64(len(h.entries))
	return h.entries[seq-floor].elem
}

// attach registers a subscriber that has seen every delivery up to and
// including last. It fails with ErrResumeExpired when deliveries in
// (last, oldest-retained) are already gone. A cursor beyond the current
// head is legal: after a crash the engine replays deliveries the
// subscriber already saw, and the cursor simply waits them out.
func (h *hub) attach(last uint64) (*subCursor, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.killed || h.ended {
		return nil, ErrServerClosed
	}
	floor := h.next - uint64(len(h.entries)) // oldest retained seq
	if last+1 < floor {
		return nil, fmt.Errorf("%w: resume at %d but oldest retained delivery is %d", ErrResumeExpired, last, floor)
	}
	s := &subCursor{cursor: last + 1}
	h.subs[s] = struct{}{}
	return s, nil
}

// detach removes a subscriber (idempotent) and wakes a blocked
// publisher that may have been waiting on it.
func (h *hub) detach(s *subCursor) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
	h.cond.Broadcast()
}

// collect waits for deliveries at or past s.cursor and appends up to
// max of them to buf, advancing the cursor. It returns (entries, false,
// nil) on data, (nil, true, nil) at a graceful end of stream, and an
// error when the subscriber was severed or the hub killed.
func (h *hub) collect(s *subCursor, buf []hubEntry, max int) ([]hubEntry, bool, error) {
	h.mu.Lock()
	defer func() {
		h.mu.Unlock()
		h.cond.Broadcast() // cursor advanced: wake a blocked publisher
	}()
	for {
		if s.err != nil {
			return nil, false, s.err
		}
		if h.killed {
			return nil, false, ErrServerClosed
		}
		if h.next > s.cursor {
			floor := h.next - uint64(len(h.entries))
			i := int(s.cursor - floor)
			for ; i < len(h.entries) && len(buf) < max; i++ {
				buf = append(buf, h.entries[i])
			}
			s.cursor = h.entries[i-1].seq + 1
			return buf, false, nil
		}
		if h.ended {
			return nil, true, nil
		}
		h.cond.Wait()
	}
}

// end marks a graceful end of stream: subscribers drain what is
// retained, then receive the end marker.
func (h *hub) end() {
	h.mu.Lock()
	h.ended = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// kill unblocks everything immediately (crash path).
func (h *hub) kill() {
	h.mu.Lock()
	h.killed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// drained reports whether every attached subscriber has consumed every
// published delivery (used by graceful shutdown to wait for the tail).
func (h *hub) drained() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		if s.cursor < h.next {
			return false
		}
	}
	return true
}

// snapshot returns the retained entries with seq ≤ cut, for the server
// checkpoint. Entries above the cut are NOT persisted: the engine
// replays them deterministically after restore, with the same sequence
// numbers (the delivery counter is part of the engine snapshot).
func (h *hub) snapshot(cut uint64) []hubEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []hubEntry
	for _, e := range h.entries {
		if e.seq <= cut {
			out = append(out, e)
		}
	}
	return out
}
