package server

// White-box hub tests: the slow-consumer policies and the resume
// window, deterministic and socket-free.

import (
	"errors"
	"testing"
	"time"

	"punctsafe/stream"
)

func testSchema() *stream.Schema {
	return stream.MustSchema("out", stream.Attribute{Name: "v", Kind: stream.KindInt})
}

func intElem(v int64) stream.Element {
	return stream.TupleElement(stream.NewTuple(stream.Int(v)))
}

func publishN(h *hub, from, n int) {
	for i := 0; i < n; i++ {
		h.publish(uint64(from+i), intElem(int64(from+i)))
	}
}

func TestHubDropPolicy(t *testing.T) {
	var dropped []uint64
	h := newHub("q", testSchema(), 8, 4, SlowDrop)
	h.onDrop = func(query string, elem stream.Element, seq uint64) {
		dropped = append(dropped, seq)
	}
	s, err := h.attach(0)
	if err != nil {
		t.Fatal(err)
	}
	publishN(h, 1, 10) // backlog 10 > limit 4: deliveries 1..6 dropped
	if want := []uint64{1, 2, 3, 4, 5, 6}; len(dropped) != len(want) {
		t.Fatalf("dropped %v, want %v", dropped, want)
	}
	got, ended, err := h.collect(s, nil, 100)
	if err != nil || ended {
		t.Fatalf("collect: ended=%v err=%v", ended, err)
	}
	if len(got) != 4 || got[0].seq != 7 || got[3].seq != 10 {
		t.Fatalf("surviving deliveries %v, want seqs 7..10", got)
	}
	if s.dropped != 6 {
		t.Fatalf("cursor counted %d drops, want 6", s.dropped)
	}
}

func TestHubDisconnectPolicy(t *testing.T) {
	h := newHub("q", testSchema(), 8, 4, SlowDisconnect)
	s, err := h.attach(0)
	if err != nil {
		t.Fatal(err)
	}
	publishN(h, 1, 6)
	if _, _, err := h.collect(s, nil, 100); err == nil {
		t.Fatal("lagging subscriber was not severed")
	}
}

func TestHubBlockPolicy(t *testing.T) {
	h := newHub("q", testSchema(), 8, 4, SlowBlock)
	s, err := h.attach(0)
	if err != nil {
		t.Fatal(err)
	}
	publishN(h, 1, 4) // exactly at the limit: publisher not yet blocked
	blocked := make(chan struct{})
	go func() {
		h.publish(5, intElem(5)) // backlog would exceed 4: must wait
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("publisher did not block on a full subscriber backlog")
	case <-time.After(20 * time.Millisecond):
	}
	if _, _, err := h.collect(s, nil, 100); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after the subscriber caught up")
	}
	// Detach must also unblock a waiting publisher.
	publishN(h, 6, 3)
	blocked2 := make(chan struct{})
	go func() {
		h.publish(9, intElem(9))
		close(blocked2)
	}()
	h.detach(s)
	select {
	case <-blocked2:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after the slow subscriber detached")
	}
}

func TestHubResumeWindow(t *testing.T) {
	h := newHub("q", testSchema(), 4, 4, SlowDrop)
	publishN(h, 1, 10) // retained: 7..10
	if _, err := h.attach(2); !errors.Is(err, ErrResumeExpired) {
		t.Fatalf("resume below the retention floor: got %v, want ErrResumeExpired", err)
	}
	s, err := h.attach(6) // cursor 7 == floor: exactly resumable
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := h.collect(s, nil, 100)
	if err != nil || len(got) != 4 || got[0].seq != 7 {
		t.Fatalf("resume at floor: got %v err %v", got, err)
	}
	// A cursor ahead of the head (post-restore replay wait) is legal
	// and has zero backlog.
	ahead, err := h.attach(25)
	if err != nil {
		t.Fatalf("attach ahead of head: %v", err)
	}
	publishN(h, 11, 2) // replayed deliveries below the ahead cursor
	done := make(chan struct{})
	go func() {
		h.collect(ahead, nil, 1)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("ahead cursor returned deliveries it already saw")
	case <-time.After(20 * time.Millisecond):
	}
	h.kill()
	<-done
}

func TestHubSnapshotCut(t *testing.T) {
	h := newHub("q", testSchema(), 16, 8, SlowDrop)
	publishN(h, 1, 10)
	snap := h.snapshot(7)
	if len(snap) != 7 || snap[0].seq != 1 || snap[6].seq != 7 {
		t.Fatalf("snapshot(7) = %v, want seqs 1..7", snap)
	}
	// Seeding a fresh hub resumes numbering at the cut.
	h2 := newHub("q", testSchema(), 16, 8, SlowDrop)
	h2.seed(snap, 7)
	s, err := h2.attach(5)
	if err != nil {
		t.Fatal(err)
	}
	h2.publish(8, intElem(8)) // engine replay continues at cut+1
	got, _, err := h2.collect(s, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].seq != 6 || got[2].seq != 8 {
		t.Fatalf("post-seed collect = %v, want seqs 6..8", got)
	}
}
