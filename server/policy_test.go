package server_test

// End-to-end coverage for the serving-layer edge policies: a subscriber
// resuming below the retention floor must get the typed terminal
// ErrResumeExpired over the wire (not a retry loop), and the
// SlowDisconnect policy must sever an unresponsive subscriber yet let
// it reconnect and recover the exact stream from the retained window —
// with chaos on every subscriber connection.

import (
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"punctsafe/internal/faultinject"
	"punctsafe/server"
	"punctsafe/stream"
	"punctsafe/workload"
)

func startPolicyServer(t *testing.T, sock string, retain, queue int, slow server.SlowPolicy) *server.Server {
	t.Helper()
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener:   listenUnix(t, sock),
		Build:      buildAuction,
		Schemas:    []*stream.Schema{item, bid},
		Retain:     retain,
		QueueLimit: queue,
		Slow:       slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestResumeExpiredBelowFloor slides the retention window past the
// beginning of the stream and requires a late subscriber to be rejected
// with the typed ErrResumeExpired on its first attempt — the server
// answered, retrying cannot cure it.
func TestResumeExpiredBelowFloor(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	if len(want) <= 16 {
		t.Fatalf("feed yields only %d deliveries; cannot slide an 8-delivery window", len(want))
	}
	sock := filepath.Join(t.TempDir(), "s.sock")
	srv := startPolicyServer(t, sock, 8, 4, server.SlowBlock)
	defer srv.Kill()

	item, bid := workload.AuctionSchemas()
	prod, err := testDialer(sock).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, srv, prod, "feed")

	dl := testDialer(sock)
	var dials atomic.Int64
	dl.DialAddr = func(addr string) (net.Conn, error) {
		dials.Add(1)
		return net.Dial("unix", strings.TrimPrefix(addr, "unix://"))
	}
	if _, err := dl.Subscribe(testQuery); err == nil {
		t.Fatal("subscribe below the retention floor succeeded")
	} else if !contains(err, server.ErrResumeExpired) {
		t.Fatalf("want ErrResumeExpired, got %v", err)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("terminal rejection took %d dials, want exactly 1 (no retry loop)", n)
	}
}

// TestSlowDisconnectUnderChaos floods a server whose slow-consumer
// policy severs laggards, with a subscriber that refuses to read during
// the flood and dials every connection through a seeded fault injector.
// The hub must disconnect it (observable as a second dial), and the
// reconnect must recover the exact delivery stream from the retained
// window, ending with a clean drain.
func TestSlowDisconnectUnderChaos(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	sock := filepath.Join(t.TempDir(), "s.sock")
	srv := startPolicyServer(t, sock, 1<<16, 4, server.SlowDisconnect)

	dl := testDialer(sock)
	var dials atomic.Int64
	dl.DialAddr = func(addr string) (net.Conn, error) {
		c, err := net.Dial("unix", strings.TrimPrefix(addr, "unix://"))
		if err != nil {
			return nil, err
		}
		return faultinject.NewChaosConn(c, faultinject.ChaosConfig{
			Seed:         7000 + dials.Add(1),
			PartialReads: true, PartialWrites: true,
			MaxDelay: 30 * time.Microsecond,
		}), nil
	}
	sub, err := dl.Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}

	// Flood while the subscriber reads nothing: its 4-slot queue
	// overflows almost immediately and the policy severs it.
	item, bid := workload.AuctionSchemas()
	prod, err := testDialer(sock).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, srv, prod, "feed")

	got, errc := collectNAsync(sub, len(want))
	if err := <-errc; err != nil {
		t.Fatalf("subscriber after disconnect: %v", err)
	}
	requireSameStream(t, "slow-disconnect", deliveryStrings(<-got), want)
	if n := dials.Load(); n < 2 {
		t.Fatalf("subscriber synced in %d dials; the slow-consumer disconnect never fired", n)
	}

	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after drain, got %v", err)
	}
	sub.Close()
}
