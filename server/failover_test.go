package server_test

// Warm-standby replication and horizontal failover acceptance suite.
// The headline (TestStandbyFailoverEquivalence) extends the restart
// crash-equivalence guarantee to promotion: kill the primary at seeded
// points mid-stream, let the warm standby promote itself, let the
// clients rotate over on their own, and require the subscriber-observed
// delivery stream — tuples, punctuations, order, sequence numbers — to
// be element-for-element identical to an uninterrupted single-server
// run. The satellites pin the protocol edges: mid-snapshot feed cuts,
// standby lag gating producer acks, fencing of revived old primaries,
// probe health, and a repeated kill→promote→re-seed soak.

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"punctsafe/internal/faultinject"
	"punctsafe/server"
	"punctsafe/stream"
	"punctsafe/workload"
)

// haNode is one server of a replicated pair/chain, with its socket and
// checkpoint paths allocated up front so client dialers can list every
// candidate address before the server behind it exists.
type haNode struct {
	srv  *server.Server
	sock string // client (data) socket
	repl string // replication socket
	ckpt string
}

func nodePaths(dir, name string) *haNode {
	return &haNode{
		sock: filepath.Join(dir, name+".sock"),
		repl: filepath.Join(dir, name+".repl"),
		ckpt: filepath.Join(dir, name+".ckpt"),
	}
}

func (n *haNode) addr() string { return "unix://" + n.sock }

// haConfig is the shared node configuration: every node (primary or
// standby) gets a replication listener so a promoted standby can feed
// the next standby in turn.
func haConfig(t testing.TB, n *haNode) server.Config {
	t.Helper()
	item, bid := workload.AuctionSchemas()
	return server.Config{
		Listener:       listenUnix(t, n.sock),
		ReplListener:   listenUnix(t, n.repl),
		Build:          buildAuction,
		Schemas:        []*stream.Schema{item, bid},
		CheckpointPath: n.ckpt,
		Advertise:      n.addr(),
	}
}

func startPrimaryNode(t testing.TB, n *haNode) {
	t.Helper()
	cfg := haConfig(t, n)
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.srv = srv
}

// startStandbyNode starts n as a warm standby of `of`. A nil dial uses
// the real unix transport; tests inject chaos or gates through it.
func startStandbyNode(t testing.TB, n *haNode, of *haNode, promote time.Duration, dial func(string) (net.Conn, error)) {
	t.Helper()
	cfg := haConfig(t, n)
	cfg.ReplicaOf = "unix://" + of.repl
	cfg.ReplicaDial = dial
	cfg.PromoteTimeout = promote
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.srv = srv
}

// haDialer lists every node's client address as a failover candidate.
func haDialer(nodes ...*haNode) *server.Dialer {
	d := &server.Dialer{
		MaxRetries: 200,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
	}
	for _, n := range nodes {
		d.Addrs = append(d.Addrs, n.addr())
	}
	return d
}

// waitSynced polls until the node's engine has committed the source up
// to the target wire offset (requires an installed snapshot first).
func waitSynced(t testing.TB, n *haNode, source string, target int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rt := n.srv.Runtime(); rt != nil && rt.ResumeOffset(source) == target {
			return
		}
		if time.Now().After(deadline) {
			got := int64(-1)
			if rt := n.srv.Runtime(); rt != nil {
				got = rt.ResumeOffset(source)
			}
			t.Fatalf("standby stuck at offset %d, want %d", got, target)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitPromoted(t testing.TB, n *haNode) {
	t.Helper()
	select {
	case <-n.srv.Promoted():
	case <-time.After(10 * time.Second):
		t.Fatal("standby never promoted")
	}
}

// ackAll drives checkpoints until the producer's durable ack floor
// reaches everything it sent — with a standby attached this proves the
// standby acked those offsets too (CheckpointNow gates on its floor).
func ackAll(t testing.TB, srv *server.Server, prod *server.Producer) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for prod.Acked() != prod.Sent() {
		if err := srv.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("ack floor stuck at %d, sent %d", prod.Acked(), prod.Sent())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStandbyReplicationBasic pins the happy path: the standby mirrors
// the primary's state, probes report the right roles, producer acks are
// gated on the standby's durable floor, and a graceful primary shutdown
// hands the cluster over (feed end → standby promotes → clients read
// the complete stream from it).
func TestStandbyReplicationBasic(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	dir := t.TempDir()
	p, s := nodePaths(dir, "p"), nodePaths(dir, "s")
	startPrimaryNode(t, p)
	startStandbyNode(t, s, p, 50*time.Millisecond, nil)

	item, bid := workload.AuctionSchemas()
	prod, err := haDialer(p, s).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, p.srv, prod, "feed")
	ackAll(t, p.srv, prod)
	waitSynced(t, s, "feed", prod.Sent())

	if h, err := (&server.Dialer{Addr: p.addr()}).Probe(); err != nil || h.Role != "primary" || h.Epoch != 1 {
		t.Fatalf("primary probe: %+v, %v", h, err)
	}
	if h, err := (&server.Dialer{Addr: s.addr()}).Probe(); err != nil || h.Role != "standby" {
		t.Fatalf("standby probe: %+v, %v", h, err)
	} else if h.Offsets["feed"] != prod.Sent() {
		t.Fatalf("standby probe offset %d, want %d", h.Offsets["feed"], prod.Sent())
	}

	prod.Close()
	if err := p.srv.Shutdown(); err != nil {
		t.Fatalf("primary shutdown: %v", err)
	}
	waitPromoted(t, s) // clean feed end + PromoteTimeout>0 = planned handover
	if !s.srv.IsPrimary() || s.srv.Epoch() != 2 {
		t.Fatalf("promoted standby: primary=%v epoch=%d", s.srv.IsPrimary(), s.srv.Epoch())
	}

	sub, err := haDialer(s).Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, errc := collectAsync(sub)
	if err := s.srv.Shutdown(); err != nil {
		t.Fatalf("standby shutdown: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("subscriber: %v", err)
	}
	requireSameStream(t, "handover", deliveryStrings(<-got), want)
	if sub.Epoch() != 2 {
		t.Fatalf("subscriber epoch %d, want 2", sub.Epoch())
	}
}

// TestStandbyFailoverEquivalence is the headline: at each seeded crash
// point the primary is killed mid-stream (engine aborted mid-element,
// sockets severed, feed cut wherever it happens to be), the standby
// promotes after its timeout, and producers and subscribers fail over
// by themselves. The delivered stream must be exact.
func TestStandbyFailoverEquivalence(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	for _, k := range faultinject.CrashPoints(len(feed), 3, 9341) {
		k := k
		t.Run(fmt.Sprintf("crash_at_%d", k), func(t *testing.T) {
			runStandbyFailover(t, feed, want, k, 25, nil, false)
		})
	}
	// Kill immediately after the checkpoint barrier: the barrier may be
	// in flight to (or mid-apply on) the standby when the primary dies.
	t.Run("mid_barrier", func(t *testing.T) {
		runStandbyFailover(t, feed, want, len(feed)/2, 0, nil, false)
	})
}

// TestStandbyFailoverChaos repeats the failover with chaos on every
// wire: clients dial through seeded fault injectors with maximal replay
// duplication (ReplayFromAck), and the standby's own feed connection is
// cut every few KB, forcing repeated reconnect+fresh-snapshot cycles
// before (and racing with) the kill.
func TestStandbyFailoverChaos(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	for i, k := range faultinject.CrashPoints(len(feed), 2, 5519) {
		k, seed := k, int64(4400+i)
		t.Run(fmt.Sprintf("crash_at_%d", k), func(t *testing.T) {
			chaos := faultinject.ChaosConfig{
				Seed:         seed,
				PartialReads: true, PartialWrites: true,
				MaxDelay: 50 * time.Microsecond,
				CutAfter: 4096, CutJitter: 4096,
			}
			runStandbyFailover(t, feed, want, k, 25, &chaos, true)
		})
	}
}

func runStandbyFailover(t *testing.T, feed []workload.Input, want []string, k, post int, chaos *faultinject.ChaosConfig, replayFromAck bool) {
	dir := t.TempDir()
	p, s := nodePaths(dir, "p"), nodePaths(dir, "s")
	startPrimaryNode(t, p)

	var replicaDial func(string) (net.Conn, error)
	if chaos != nil {
		// The standby's feed connection gets its own chaos budget: each
		// cut forces a reconnect with a fresh snapshot install.
		feedChaos := *chaos
		feedChaos.Seed = chaos.Seed + 2
		feedChaos.CutAfter, feedChaos.CutJitter = 16384, 8192
		base := func() (net.Conn, error) { return net.Dial("unix", p.repl) }
		cd := faultinject.ChaosDialer(base, feedChaos)
		replicaDial = func(string) (net.Conn, error) { return cd() }
	}
	startStandbyNode(t, s, p, 40*time.Millisecond, replicaDial)

	item, bid := workload.AuctionSchemas()
	subDl, prodDl := haDialer(p, s), haDialer(p, s)
	if chaos != nil {
		mk := func(seedShift int64) func(string) (net.Conn, error) {
			cfg := *chaos
			cfg.Seed += seedShift
			var n atomic.Int64
			return func(addr string) (net.Conn, error) {
				c, err := net.Dial("unix", addr[len("unix://"):])
				if err != nil {
					return nil, err
				}
				per := cfg
				per.Seed += n.Add(1)
				return faultinject.NewChaosConn(c, per), nil
			}
		}
		prodDl.DialAddr = mk(0)
		subDl.DialAddr = mk(1)
	}

	sub, err := subDl.Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Collect by count, not by end-of-stream: the subscriber may still be
	// mid-reconnect when the test would otherwise shut the promoted
	// standby down, and a drain only reaches subscribers that are
	// attached. Once all deliveries have arrived it is provably attached,
	// and the non-chaos path then verifies the clean drain explicitly.
	got, errc := collectNAsync(sub, len(want))

	prod, err := prodDl.Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	prod.ReplayFromAck = replayFromAck
	send := func(from, to int) {
		for _, it := range feed[from:to] {
			if err := prod.Send(it.Stream, it.Elem); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Make sure the standby is attached before the first checkpoint so
	// producer acks are gated on its floor from the start.
	waitSynced(t, s, "feed", 0)

	send(0, k)
	waitIngested(t, p.srv, prod, "feed")
	if err := p.srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	cut := k + post
	if cut > len(feed) {
		cut = len(feed)
	}
	send(k, cut)

	p.srv.Kill() // primary dead: feed severed wherever it happens to be
	waitPromoted(t, s)

	send(cut, len(feed))
	waitIngested(t, s.srv, prod, "feed")
	if prod.Epoch() != 2 {
		t.Fatalf("producer epoch %d after failover, want 2", prod.Epoch())
	}
	prod.Close()

	if err := <-errc; err != nil {
		t.Fatalf("subscriber after failover: %v", err)
	}
	requireSameStream(t, "standby-failover", deliveryStrings(<-got), want)
	if err := s.srv.Shutdown(); err != nil {
		t.Fatalf("standby shutdown: %v", err)
	}
	if chaos == nil {
		// The attached subscriber must see the drain as a clean
		// end-of-stream (under chaos an injected reset may sever it).
		if _, err := sub.Next(); err != io.EOF {
			t.Fatalf("want io.EOF after standby drain, got %v", err)
		}
	}
	sub.Close()
}

// TestMidSnapshotCrashPromotion cuts the replica handshake mid-snapshot
// transfer (twice), requires the standby to recover by redialing for a
// fresh snapshot, and then proves the eventual promotion still serves
// the exact stream.
func TestMidSnapshotCrashPromotion(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	dir := t.TempDir()
	p, s := nodePaths(dir, "p"), nodePaths(dir, "s")
	startPrimaryNode(t, p)

	item, bid := workload.AuctionSchemas()
	prod, err := haDialer(p).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, p.srv, prod, "feed") // snapshot will be comfortably over the cut budget

	var dials atomic.Int64
	dial := func(string) (net.Conn, error) {
		c, err := net.Dial("unix", p.repl)
		if err != nil {
			return nil, err
		}
		n := dials.Add(1)
		if n <= 2 {
			// The snapshot is several KB: a ~300-byte budget lands the
			// cut inside the snapshot read.
			return faultinject.NewChaosConn(c, faultinject.ChaosConfig{
				Seed: 100 + n, CutAfter: 250, CutJitter: 100,
			}), nil
		}
		return c, nil
	}
	startStandbyNode(t, s, p, 40*time.Millisecond, dial)
	waitSynced(t, s, "feed", prod.Sent())
	if n := dials.Load(); n < 3 {
		t.Fatalf("standby synced in %d dials; the mid-snapshot cuts never fired", n)
	}
	prod.Close()

	p.srv.Kill()
	waitPromoted(t, s)
	sub, err := haDialer(s).Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, errc := collectAsync(sub)
	if err := s.srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("subscriber: %v", err)
	}
	requireSameStream(t, "mid-snapshot", deliveryStrings(<-got), want)
}

// TestStandbyLagHoldsAcks pins the exactly-once ack gate: while the
// standby's feed is partitioned (held, not severed), primary
// checkpoints must NOT ack producers past the standby's durable floor —
// otherwise a producer could trim bytes that a subsequent promotion
// has never seen. Releasing the partition lets the floor catch up.
func TestStandbyLagHoldsAcks(t *testing.T) {
	feed := auctionFeed()
	dir := t.TempDir()
	p, s := nodePaths(dir, "p"), nodePaths(dir, "s")
	startPrimaryNode(t, p)

	var gateMu atomic.Pointer[faultinject.NetGate]
	dial := func(string) (net.Conn, error) {
		c, err := net.Dial("unix", p.repl)
		if err != nil {
			return nil, err
		}
		g := faultinject.NewNetGate(c)
		gateMu.Store(g)
		return g, nil
	}
	startStandbyNode(t, s, p, 0, dial) // no auto-promotion: pure replication

	item, bid := workload.AuctionSchemas()
	prod, err := haDialer(p).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	half := len(feed) / 2
	for _, it := range feed[:half] {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, p.srv, prod, "feed")
	ackAll(t, p.srv, prod)
	floor := prod.Acked()
	waitSynced(t, s, "feed", floor)

	gateMu.Load().Hold() // partition: the standby can neither read the feed nor write acks

	for _, it := range feed[half:] {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, p.srv, prod, "feed")
	for i := 0; i < 3; i++ {
		if err := p.srv.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := prod.Acked(); got != floor {
		t.Fatalf("acks advanced to %d during standby partition (floor %d): promotion could lose acked frames", got, floor)
	}

	gateMu.Load().Release()
	ackAll(t, p.srv, prod)
	if prod.Acked() != prod.Sent() {
		t.Fatalf("acks stuck at %d after release, sent %d", prod.Acked(), prod.Sent())
	}

	prod.Close()
	s.srv.Kill()
	if err := p.srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestFencingDuelingPrimaries revives a killed old primary from its own
// checkpoint after the standby has promoted, and requires the fencing
// epoch to keep it harmless: clients that have seen the new epoch
// refuse it (and fence it in passing), fresh clients get bounced to a
// live address, and its probe admits it is fenced.
func TestFencingDuelingPrimaries(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	dir := t.TempDir()
	a, b := nodePaths(dir, "a"), nodePaths(dir, "b")
	startPrimaryNode(t, a)
	startStandbyNode(t, b, a, 0, nil) // manual promotion

	item, bid := workload.AuctionSchemas()
	prod, err := haDialer(a, b).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	half := len(feed) / 2
	for _, it := range feed[:half] {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, a.srv, prod, "feed")
	ackAll(t, a.srv, prod) // also guarantees a.ckpt exists for the revival

	a.srv.Kill()
	if err := b.srv.Promote(); err != nil {
		t.Fatal(err)
	}
	waitPromoted(t, b)
	if got := b.srv.Epoch(); got != 2 {
		t.Fatalf("promoted epoch %d, want 2", got)
	}
	for _, it := range feed[half:] {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, b.srv, prod, "feed")
	if prod.Epoch() != 2 {
		t.Fatalf("producer epoch %d after promotion, want 2", prod.Epoch())
	}

	// Revive the dead primary from its checkpoint: it comes back at
	// epoch 1, convinced it is still the primary.
	cfg := haConfig(t, a)
	revived, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !revived.IsPrimary() || revived.Epoch() != 1 {
		t.Fatalf("revived: primary=%v epoch=%d, want primary at epoch 1", revived.IsPrimary(), revived.Epoch())
	}

	// A client that has seen epoch 2 rejects the stale server — and its
	// epoch-2 hello fences it in passing.
	staleDl := haDialer(a)
	staleDl.MaxRetries = 2
	staleDl.MinEpoch = 2
	if _, err := staleDl.Producer("feed2", item, bid); err == nil {
		t.Fatal("epoch-2 client accepted the revived epoch-1 primary")
	} else if !contains(err, server.ErrFenced) {
		t.Fatalf("want a fencing rejection, got %v", err)
	}
	if revived.IsPrimary() {
		t.Fatal("revived primary still claims the primary role after seeing epoch 2")
	}
	if h, err := (&server.Dialer{Addr: a.addr()}).Probe(); err != nil || h.Role != "fenced" {
		t.Fatalf("revived probe: %+v, %v", h, err)
	}

	// A fresh client listing both addresses bounces off the fenced
	// server and lands on the real primary.
	sub, err := haDialer(a, b).Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Epoch() != 2 {
		t.Fatalf("fresh subscriber landed at epoch %d, want 2", sub.Epoch())
	}
	got, errc := collectAsync(sub)
	prod.Close()
	revived.Kill()
	if err := b.srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("subscriber: %v", err)
	}
	requireSameStream(t, "fencing", deliveryStrings(<-got), want)
}

// TestFailoverSoak runs repeated kill→promote→new-standby cycles over
// one continuous stream: each round the primary is killed mid-stream,
// the standby promotes, a fresh standby is seeded from the new primary,
// and the clients follow along. The final stream must be exact and the
// epoch must have advanced once per promotion. SOAKFAILOVER_CYCLES
// raises the round count (make soakfailover).
func TestFailoverSoak(t *testing.T) {
	cycles := 3
	if v := os.Getenv("SOAKFAILOVER_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SOAKFAILOVER_CYCLES %q", v)
		}
		cycles = n
	}
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	dir := t.TempDir()

	nodes := make([]*haNode, cycles+2)
	for i := range nodes {
		nodes[i] = nodePaths(dir, fmt.Sprintf("n%d", i))
	}
	startPrimaryNode(t, nodes[0])
	startStandbyNode(t, nodes[1], nodes[0], 40*time.Millisecond, nil)

	dl := haDialer(nodes...)
	sub, err := dl.Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	// By count, not end-of-stream: the final drain must not start until
	// the subscriber has provably caught up (see runStandbyFailover).
	got, errc := collectNAsync(sub, len(want))

	item, bid := workload.AuctionSchemas()
	prod, err := haDialer(nodes...).Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}

	chunk := (len(feed) + cycles) / (cycles + 1)
	sent := 0
	for cycle := 0; cycle <= cycles; cycle++ {
		primary, standby := nodes[cycle], nodes[cycle+1]
		to := sent + chunk
		if cycle == cycles || to > len(feed) {
			to = len(feed)
		}
		waitSynced(t, standby, "feed", prod.Sent()) // standby attached before acks flow
		for _, it := range feed[sent:to] {
			if err := prod.Send(it.Stream, it.Elem); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.Flush(); err != nil {
			t.Fatal(err)
		}
		sent = to
		waitIngested(t, primary.srv, prod, "feed")
		ackAll(t, primary.srv, prod)
		if cycle == cycles {
			prod.Close()
			if err := <-errc; err != nil {
				t.Fatalf("subscriber: %v", err)
			}
			requireSameStream(t, "soak", deliveryStrings(<-got), want)
			if err := primary.srv.Shutdown(); err != nil {
				t.Fatal(err)
			}
			if _, err := sub.Next(); err != io.EOF {
				t.Fatalf("want io.EOF after final drain, got %v", err)
			}
			// The clean feed end hands over to the last standby too.
			waitPromoted(t, standby)
			standby.srv.Kill()
			break
		}
		primary.srv.Kill()
		waitPromoted(t, standby)
		if got, wantEpoch := standby.srv.Epoch(), uint64(cycle+2); got != wantEpoch {
			t.Fatalf("cycle %d: promoted epoch %d, want %d", cycle, got, wantEpoch)
		}
		startStandbyNode(t, nodes[cycle+2], standby, 40*time.Millisecond, nil)
	}
	sub.Close()
}

// TestProbe pins the health frame against a plain primary.
func TestProbe(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener: listenUnix(t, sock),
		Build:    buildAuction,
		Schemas:  []*stream.Schema{item, bid},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()

	dl := testDialer(sock)
	prod, err := dl.Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for _, it := range auctionFeed()[:10] {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, srv, prod, "feed")

	h, err := testDialer(sock).Probe()
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "primary" || h.Epoch != 1 {
		t.Fatalf("probe: %+v", h)
	}
	if h.Offsets["feed"] != prod.Sent() {
		t.Fatalf("probe offset %d, want %d", h.Offsets["feed"], prod.Sent())
	}
}
