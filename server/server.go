package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"punctsafe/engine"
	"punctsafe/stream"
)

// serverCkptMagic seals the server checkpoint: the engine snapshot plus
// every hub's retained deliveries at the same cut, in one atomic file.
// v02 adds the fencing epoch right after the magic; v01 files (no
// epoch) are still restored, at epoch 1.
//
//	"PSRVCK02" uvarint(epoch) uvarint(len(engineBlob)) engineBlob
//	uvarint(nqueries) { str(name) uvarint(cut) uvarint(nentries)
//	                    { uvarint(seq) uvarint(len) codecPayload } }
//	crc32-IEEE(everything before)
const (
	serverCkptMagic   = "PSRVCK02"
	serverCkptMagicV1 = "PSRVCK01"
)

// ErrCorruptServerCheckpoint classifies an unreadable server snapshot.
var ErrCorruptServerCheckpoint = errors.New("server: corrupt checkpoint")

// Config assembles a Server.
type Config struct {
	// Listener accepts producer and subscriber connections (TCP or unix
	// socket). The server owns it and closes it on shutdown. Wrap it in
	// tls.NewListener for transport security; clients set Dialer.TLS.
	Listener net.Listener
	// Build registers schemes and queries on a fresh DSMS. It runs once
	// at startup and again (on a fresh DSMS) when restoring from a
	// checkpoint or installing a replication snapshot, so it must be
	// deterministic.
	Build func(*engine.DSMS) error
	// Schemas are the input stream schemas producers may send.
	Schemas []*stream.Schema
	// Runtime tunes the wrapped runtime (error policy, buffers).
	Runtime engine.RuntimeOptions
	// CheckpointPath, when set, enables durability: the server restores
	// from this file at startup when it exists, checkpoints to it every
	// CheckpointEvery (and at graceful shutdown), and acks producers
	// with the durable offsets each checkpoint commits. Empty disables
	// checkpoints AND producer acks.
	CheckpointPath  string
	CheckpointEvery time.Duration
	// QueueLimit bounds a subscriber's pending backlog before the slow
	// consumer policy applies (default 256). Must be ≤ Retain.
	QueueLimit int
	// Retain is how many recent deliveries each query keeps for
	// reconnecting subscribers (default 1024). A subscriber resuming
	// below the retention floor is rejected with ErrResumeExpired.
	Retain int
	// Slow selects the slow-consumer policy (default SlowBlock).
	Slow SlowPolicy
	// DrainTimeout bounds how long a graceful Shutdown waits for
	// connected subscribers to consume the final deliveries before
	// ending their streams anyway (default 10s).
	DrainTimeout time.Duration
	// AuthToken, when set, is a shared secret every hello must carry;
	// mismatches are rejected with ErrUnauthorized before any role is
	// serviced.
	AuthToken string
	// Advertise is the address clients should be redirected to when
	// this server is (or becomes) the primary. Defaults to the
	// listener's address — set it when the listener binds a wildcard.
	Advertise string
	// ReplListener, when set, accepts warm-standby replication
	// connections and enables the replication feed (an engine ingest
	// tap recording ingress order). The server owns and closes it.
	ReplListener net.Listener
	// ReplBuffer bounds the in-memory replication backlog in bytes
	// (default 16 MiB). A standby lagging beyond it is evicted and must
	// reconnect with a fresh snapshot.
	ReplBuffer int
	// ReplicaOf, when set, starts the server as a warm standby
	// replicating from the given primary replication address. It
	// rejects producers/subscribers (with a redirect to the primary)
	// until promoted by Promote or PromoteTimeout.
	ReplicaOf string
	// ReplicaDial overrides how the standby dials ReplicaOf (chaos
	// injection, in-memory pipes). Defaults to tcp/unix by prefix, as
	// Dialer.Addr.
	ReplicaDial func(addr string) (net.Conn, error)
	// PromoteTimeout, on a standby, bounds how long a lost replication
	// feed is re-dialed before the standby promotes itself. Zero
	// disables automatic promotion (Promote still works).
	PromoteTimeout time.Duration
	// Logf, when set, receives server lifecycle and connection logs.
	Logf func(format string, args ...any)
}

// enginePack bundles one engine incarnation: the DSMS, its runtime, and
// the per-query delivery hubs wired to it. The primary builds exactly
// one; a standby builds a fresh pack per installed snapshot (every
// feed (re)connect), swapping it in atomically.
type enginePack struct {
	d    *engine.DSMS
	rt   *engine.Runtime
	hubs map[string]*hub
}

// Server wraps a runtime behind a listener. See the package comment for
// the HA contract.
type Server struct {
	cfg Config
	eng atomic.Pointer[enginePack]

	// epoch is the fencing epoch: bumped on every promotion, persisted
	// in the checkpoint, carried in every protocol reply. fenced is set
	// when a hello proves a newer primary exists; a fenced server
	// rejects all data and replication roles.
	epoch   atomic.Uint64
	fenced  atomic.Bool
	standby atomic.Bool

	// observed is the highest fencing epoch any peer hello has carried.
	// A standby folds it into its promotion epoch instead of fencing:
	// rotating clients routinely reach a fresh standby before its first
	// snapshot install, and a standby serves no data roles, so a newer
	// epoch cannot split-brain through it.
	observed atomic.Uint64

	repl *replLog // primary-side feed; non-nil iff ReplListener set
	stb  *standbyRunner

	mu        sync.Mutex
	producers map[string]net.Conn // active producer conn per source
	conns     map[net.Conn]struct{}
	replConns map[net.Conn]struct{} // attached standby feed conns
	stopping  bool
	killed    bool

	ckptMu sync.Mutex // serializes checkpoints and the acks they send

	acceptWg sync.WaitGroup // accept loops + producer/subscriber handshakes
	replWg   sync.WaitGroup // replica feed senders
	subWg    sync.WaitGroup // subscriber writers (drain after runtime)
	tickMu   sync.Mutex     // guards tickStarted (promotion vs shutdown)
	tickOn   bool
	tickStop chan struct{}
	tickWg   sync.WaitGroup

	doneMu  sync.Mutex
	doneErr error
	done    chan struct{}
}

// New builds the DSMS, restores from cfg.CheckpointPath when the file
// exists (fresh start otherwise), and begins serving on cfg.Listener.
// With cfg.ReplicaOf set it starts in standby mode instead: no local
// runtime until the first snapshot from the primary is installed.
func New(cfg Config) (*Server, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("server: Config.Listener is required")
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("server: Config.Build is required")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 256
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 1024
	}
	if cfg.QueueLimit > cfg.Retain {
		return nil, fmt.Errorf("server: QueueLimit %d exceeds Retain %d (reconnect resume would be impossible)", cfg.QueueLimit, cfg.Retain)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ReplBuffer <= 0 {
		cfg.ReplBuffer = 16 << 20
	}
	s := &Server{
		cfg:       cfg,
		producers: make(map[string]net.Conn),
		conns:     make(map[net.Conn]struct{}),
		replConns: make(map[net.Conn]struct{}),
		tickStop:  make(chan struct{}),
		done:      make(chan struct{}),
	}
	if cfg.ReplListener != nil {
		s.repl = newReplLog(cfg.ReplBuffer)
	}

	if cfg.ReplicaOf != "" {
		// Standby: the engine starts when the first snapshot arrives.
		s.standby.Store(true)
		s.stb = newStandbyRunner(s)
		s.acceptWg.Add(1)
		go s.acceptLoop(cfg.Listener)
		if cfg.ReplListener != nil {
			s.acceptWg.Add(1)
			go s.acceptLoop(cfg.ReplListener)
		}
		s.stb.start()
		cfg.Logf("punctserve: standby of %s, serving on %s", cfg.ReplicaOf, cfg.Listener.Addr())
		return s, nil
	}

	p, err := s.newPack()
	if err != nil {
		return nil, err
	}
	var blob []byte
	epoch := uint64(1)
	if cfg.CheckpointPath != "" {
		raw, err := os.ReadFile(cfg.CheckpointPath)
		switch {
		case err == nil:
			if blob, epoch, err = s.restoreEnvelope(p, raw); err != nil {
				return nil, err
			}
		case errors.Is(err, os.ErrNotExist):
			// fresh start
		default:
			return nil, fmt.Errorf("server: reading checkpoint: %w", err)
		}
	}
	s.epoch.Store(epoch)
	if err := s.startPack(p, blob); err != nil {
		return nil, err
	}
	if blob != nil {
		cfg.Logf("punctserve: restored from %s (epoch %d)", cfg.CheckpointPath, epoch)
	}
	s.eng.Store(p)

	s.acceptWg.Add(1)
	go s.acceptLoop(cfg.Listener)
	if cfg.ReplListener != nil {
		s.acceptWg.Add(1)
		go s.acceptLoop(cfg.ReplListener)
	}
	s.startCheckpointLoop()
	cfg.Logf("punctserve: serving on %s (epoch %d)", cfg.Listener.Addr(), epoch)
	return s, nil
}

// newPack builds a fresh DSMS + hubs (no runtime yet).
func (s *Server) newPack() (*enginePack, error) {
	d := engine.New()
	if err := s.cfg.Build(d); err != nil {
		return nil, fmt.Errorf("server: build: %w", err)
	}
	p := &enginePack{d: d, hubs: make(map[string]*hub)}
	for _, name := range d.Queries() {
		reg, _ := d.Get(name)
		h := newHub(name, reg.OutputSchema(), s.cfg.Retain, s.cfg.QueueLimit, s.cfg.Slow)
		h.onDrop = func(query string, elem stream.Element, seq uint64) {
			if rt := s.runtime(); rt != nil {
				rt.AddDeadLetter(engine.DeadLetter{
					Query: query,
					Elem:  elem,
					Err:   fmt.Errorf("server: delivery %d dropped: subscriber backlog over %d (policy %v)", seq, s.cfg.QueueLimit, s.cfg.Slow),
				})
			}
		}
		reg.SetDeliveryHook(h.publish)
		p.hubs[name] = h
	}
	return p, nil
}

// startPack starts the pack's runtime, restoring from blob when given.
// When replication is enabled the runtime records every committed wire
// ingest into the feed, in ingress order.
func (s *Server) startPack(p *enginePack, blob []byte) error {
	opts := s.cfg.Runtime
	if s.repl != nil {
		opts.IngestTap = s.repl.appendFrame
	}
	if blob != nil {
		rt, err := p.d.RestoreRuntime(bytes.NewReader(blob), opts)
		if err != nil {
			return fmt.Errorf("server: restore: %w", err)
		}
		p.rt = rt
		return nil
	}
	p.rt = p.d.RunSharded(opts)
	return nil
}

func (s *Server) startCheckpointLoop() {
	if s.cfg.CheckpointPath == "" || s.cfg.CheckpointEvery <= 0 {
		return
	}
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	if s.tickOn {
		return
	}
	select {
	case <-s.tickStop:
		return // already shutting down
	default:
	}
	s.tickOn = true
	s.tickWg.Add(1)
	go s.checkpointLoop()
}

// pack returns the current engine incarnation (nil on a standby before
// its first snapshot install).
func (s *Server) pack() *enginePack { return s.eng.Load() }

func (s *Server) runtime() *engine.Runtime {
	if p := s.pack(); p != nil {
		return p.rt
	}
	return nil
}

// Addr returns the listener address (handy with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.cfg.Listener.Addr() }

// primaryRedirect is the address a standby points rejected data
// clients at: the primary's advertised client address once the feed
// handshake has taught it, the replication address before that.
func (s *Server) primaryRedirect() string {
	if s.stb != nil {
		if a := s.stb.primaryAddr(); a != "" {
			return a
		}
	}
	return s.cfg.ReplicaOf
}

// advertise is the address this server hands out in redirects.
func (s *Server) advertise() string {
	if s.cfg.Advertise != "" {
		return s.cfg.Advertise
	}
	return s.cfg.Listener.Addr().String()
}

// Runtime exposes the wrapped runtime for stats and dead letters (nil
// on a standby that has not installed a snapshot yet).
func (s *Server) Runtime() *engine.Runtime { return s.runtime() }

// Epoch returns the server's current fencing epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// IsPrimary reports whether the server currently serves data roles.
func (s *Server) IsPrimary() bool { return !s.standby.Load() && !s.fenced.Load() }

func (s *Server) acceptLoop(l net.Listener) {
	defer s.acceptWg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed by Shutdown/Kill
		}
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.acceptWg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	delete(s.replConns, c)
	s.mu.Unlock()
	c.Close()
}

// reject refuses a connection with the server's epoch and an optional
// redirect to the current primary.
func (s *Server) reject(c net.Conn, err error, redirect string) {
	writeReject(c, s.epoch.Load(), err, redirect)
	s.dropConn(c)
}

// observeEpoch self-fences when a peer proves a newer primary exists:
// every data role this server could serve from now on risks
// split-brain, so it stops serving all of them. The fence is sticky
// until restart. A standby is exempt — it rejects data roles anyway and
// its epoch lags until the next snapshot install — but the observed
// epoch is recorded so a later promotion lands strictly above anything
// the clients have already seen.
func (s *Server) observeEpoch(peer uint64) {
	for {
		cur := s.observed.Load()
		if peer <= cur || s.observed.CompareAndSwap(cur, peer) {
			break
		}
	}
	if s.standby.Load() {
		return
	}
	if peer > s.epoch.Load() && !s.fenced.Swap(true) {
		s.cfg.Logf("punctserve: fenced: peer at epoch %d, own epoch %d", peer, s.epoch.Load())
	}
}

func (s *Server) serveConn(c net.Conn) {
	defer s.acceptWg.Done()
	br := bufio.NewReader(c)
	h, err := readHello(br)
	if err != nil {
		s.reject(c, err, "")
		return
	}
	if s.cfg.AuthToken != "" && h.token != s.cfg.AuthToken {
		s.reject(c, ErrUnauthorized, "")
		return
	}
	s.observeEpoch(h.epoch)
	if h.role == roleProbe {
		s.serveProbe(c)
		return
	}
	if s.fenced.Load() {
		s.reject(c, ErrFenced, "")
		return
	}
	if h.role == roleReplica {
		// The feed sender outlives the accept drain (producers are
		// severed and waited first, and the final checkpoint barrier
		// must still reach the standby), so it runs under replWg.
		s.mu.Lock()
		s.replConns[c] = struct{}{}
		s.mu.Unlock()
		s.replWg.Add(1)
		go func() {
			defer s.replWg.Done()
			s.serveReplica(c, br, h)
		}()
		return
	}
	if s.standby.Load() {
		s.reject(c, fmt.Errorf("%w: standby replicating %s", ErrNotPrimary, s.cfg.ReplicaOf), s.primaryRedirect())
		return
	}
	switch h.role {
	case roleProduce:
		s.serveProducer(c, br, h)
	case roleSub:
		s.serveSubscriber(c, br, h)
	}
}

// serveProbe answers a health probe: role byte, fencing epoch (in the
// OK header), and every source's last-committed offset.
func (s *Server) serveProbe(c net.Conn) {
	role := byte(probePrimary)
	switch {
	case s.fenced.Load():
		role = probeFenced
	case s.standby.Load():
		role = probeStandby
	}
	reply := appendOK(nil, s.epoch.Load())
	reply = append(reply, role)
	var offsets map[string]int64
	if rt := s.runtime(); rt != nil {
		offsets = rt.SourceOffsets()
	}
	reply = binary.AppendUvarint(reply, uint64(len(offsets)))
	for _, src := range sortedKeys(offsets) {
		reply = binary.AppendUvarint(reply, uint64(len(src)))
		reply = append(reply, src...)
		reply = binary.AppendUvarint(reply, uint64(offsets[src]))
	}
	c.Write(reply)
	s.dropConn(c)
}

// serveProducer ingests one producer connection: handshake, resume
// preamble, then raw wire frames committed through the engine's
// offset-exact ingest path. Acks ride the checkpoint loop, not this
// goroutine.
func (s *Server) serveProducer(c net.Conn, br *bufio.Reader, h hello) {
	s.mu.Lock()
	if _, busy := s.producers[h.name]; busy {
		s.mu.Unlock()
		s.reject(c, fmt.Errorf("%w: source %q already has an active producer", ErrSourceBusy, h.name), "")
		return
	}
	s.producers[h.name] = c
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.producers, h.name)
		s.mu.Unlock()
		s.dropConn(c)
	}()

	rt := s.runtime()
	resume := rt.ResumeOffset(h.name)
	reply := binary.AppendUvarint(appendOK(nil, s.epoch.Load()), uint64(resume))
	if _, err := c.Write(reply); err != nil {
		return
	}
	start, err := binary.ReadUvarint(br)
	if err != nil {
		return
	}
	if int64(start) > resume {
		writeReject(c, s.epoch.Load(), fmt.Errorf("%w: producer starts at %d, server resumes at %d", ErrBadResume, start, resume), "")
		return
	}
	// The producer replays from its own buffer floor; skip the prefix
	// the runtime has already committed so the reader lands exactly on
	// the resume offset.
	if skip := resume - int64(start); skip > 0 {
		if _, err := io.CopyN(io.Discard, br, skip); err != nil {
			return
		}
	}
	n, err := rt.IngestWireResume(h.name, &drainBoundaryReader{br: br}, s.cfg.Schemas...)
	if err != nil && !s.teardownErr() {
		s.cfg.Logf("punctserve: producer %q: after %d elements: %v", h.name, n, err)
	}
}

// drainBoundaryReader signals engine.ErrWouldBlock exactly once each
// time the buffered bytes run out, so the ingest loop commits whatever
// the producer has sent before the read actually blocks — a connection
// that pauses mid-stream still has all its complete frames committed.
type drainBoundaryReader struct {
	br       *bufio.Reader
	signaled bool
}

func (d *drainBoundaryReader) Read(p []byte) (int, error) {
	if !d.signaled && d.br.Buffered() == 0 {
		d.signaled = true
		return 0, engine.ErrWouldBlock
	}
	d.signaled = false
	return d.br.Read(p)
}

// teardownErr reports whether connection errors are expected because
// the server itself is closing conns.
func (s *Server) teardownErr() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopping || s.killed
}

// serveSubscriber streams seq-stamped deliveries for one query.
func (s *Server) serveSubscriber(c net.Conn, br *bufio.Reader, h hello) {
	p := s.pack()
	hub, ok := p.hubs[h.name]
	if !ok {
		s.reject(c, fmt.Errorf("%w: %q", ErrUnknownQuery, h.name), "")
		return
	}
	cur, err := hub.attach(h.hint)
	if err != nil {
		s.reject(c, err, "")
		return
	}
	reg, _ := p.d.Get(h.name)
	reply := binary.AppendUvarint(appendOK(nil, s.epoch.Load()), h.hint)
	reply = appendSchema(reply, reg.OutputSchema())
	if _, err := c.Write(reply); err != nil {
		hub.detach(cur)
		s.dropConn(c)
		return
	}

	// A reader goroutine watches for the peer closing (or sending
	// anything unexpected) so a dead subscriber can never wedge a
	// SlowBlock publisher: conn death detaches the cursor.
	s.subWg.Add(1)
	go func() {
		defer s.subWg.Done()
		io.Copy(io.Discard, br)
		hub.detach(cur)
		c.Close()
	}()

	s.subWg.Add(1)
	go func() {
		defer s.subWg.Done()
		defer hub.detach(cur)
		defer s.dropConn(c)
		bw := bufio.NewWriter(c)
		var batch []hubEntry
		var payload []byte
		for {
			var ended bool
			var err error
			batch, ended, err = hub.collect(cur, batch[:0], 64)
			if err != nil {
				return
			}
			if ended {
				bw.Write(binary.AppendUvarint(nil, 0)) // end-of-stream
				bw.Flush()
				return
			}
			for _, e := range batch {
				payload, err = hub.codec.Encode(payload[:0], e.elem)
				if err != nil {
					s.cfg.Logf("punctserve: subscriber %q: encode: %v", h.name, err)
					return
				}
				var hdr [2 * binary.MaxVarintLen64]byte
				n := binary.PutUvarint(hdr[:], e.seq)
				n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
				if _, err := bw.Write(hdr[:n]); err != nil {
					return
				}
				if _, err := bw.Write(payload); err != nil {
					return
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()
}

func (s *Server) checkpointLoop() {
	defer s.tickWg.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
			if err := s.CheckpointNow(); err != nil && !s.teardownErr() {
				s.cfg.Logf("punctserve: checkpoint: %v", err)
			}
		}
	}
}

// encodeCheckpoint serializes the full server checkpoint body (callers
// hold ckptMu) and returns the engine summary taken at its cut.
func (s *Server) encodeCheckpoint(p *enginePack) ([]byte, engine.CheckpointSummary, error) {
	var engineBuf bytes.Buffer
	sum, err := p.rt.CheckpointSummary(&engineBuf)
	if err != nil {
		return nil, sum, err
	}
	body := binary.AppendUvarint([]byte(serverCkptMagic), s.epoch.Load())
	body = binary.AppendUvarint(body, uint64(engineBuf.Len()))
	body = append(body, engineBuf.Bytes()...)
	body = binary.AppendUvarint(body, uint64(len(p.hubs)))
	var payload []byte
	for _, name := range p.d.Queries() {
		h := p.hubs[name]
		cut := sum.Delivered[name]
		entries := h.snapshot(cut)
		body = binary.AppendUvarint(body, uint64(len(name)))
		body = append(body, name...)
		body = binary.AppendUvarint(body, cut)
		body = binary.AppendUvarint(body, uint64(len(entries)))
		for _, e := range entries {
			if payload, err = h.codec.Encode(payload[:0], e.elem); err != nil {
				return nil, sum, fmt.Errorf("server: checkpoint encode: %w", err)
			}
			body = binary.AppendUvarint(body, e.seq)
			body = binary.AppendUvarint(body, uint64(len(payload)))
			body = append(body, payload...)
		}
	}
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	return body, sum, nil
}

// CheckpointNow takes one durable checkpoint — the engine snapshot and
// every hub's retained ring at the same cut, in one atomic file — then
// acks every connected producer with its durable offset. With
// replication enabled the checkpoint also appends a barrier record to
// the feed, and producer acks are held down to the attached standbys'
// acknowledged floor: an offset is only acked once BOTH the local file
// and every attached standby have it, so promoting a standby can never
// lose an acked frame.
func (s *Server) CheckpointNow() error {
	if s.cfg.CheckpointPath == "" {
		return fmt.Errorf("server: no checkpoint path configured")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	p := s.pack()
	if p == nil || p.rt == nil {
		return fmt.Errorf("server: no runtime to checkpoint")
	}
	body, sum, err := s.encodeCheckpoint(p)
	if err != nil {
		return err
	}

	tmp := s.cfg.CheckpointPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.cfg.CheckpointPath)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}

	if s.repl != nil {
		s.repl.appendBarrier(sum.Offsets)
	}

	// Ack producers with the offsets this checkpoint made durable: a
	// client may trim its replay buffer up to (and resume from) exactly
	// these — never the live offsets, which a crash would rewind.
	s.mu.Lock()
	acks := make(map[net.Conn]int64, len(s.producers))
	for source, c := range s.producers {
		if off, ok := sum.Offsets[source]; ok {
			if s.repl != nil {
				if floor, held := s.repl.ackFloor(source); held && floor < off {
					off = floor
				}
			}
			acks[c] = off
		}
	}
	s.mu.Unlock()
	for c, off := range acks {
		c.Write(binary.AppendUvarint(nil, uint64(off)))
	}
	return nil
}

// restoreEnvelope validates a server checkpoint, seeds the pack's hubs
// from its retained rings, and returns the embedded engine snapshot and
// the fencing epoch it was sealed at.
func (s *Server) restoreEnvelope(p *enginePack, raw []byte) ([]byte, uint64, error) {
	fail := func(what string) ([]byte, uint64, error) {
		return nil, 0, fmt.Errorf("%w: %s", ErrCorruptServerCheckpoint, what)
	}
	if len(raw) < len(serverCkptMagic)+4 {
		return fail("bad magic")
	}
	epoch := uint64(1)
	switch string(raw[:len(serverCkptMagic)]) {
	case serverCkptMagic, serverCkptMagicV1:
	default:
		return fail("bad magic")
	}
	v2 := string(raw[:len(serverCkptMagic)]) == serverCkptMagic
	bodyEnd := len(raw) - 4
	if crc32.ChecksumIEEE(raw[:bodyEnd]) != binary.LittleEndian.Uint32(raw[bodyEnd:]) {
		return fail("checksum mismatch")
	}
	rd := bytes.NewReader(raw[len(serverCkptMagic):bodyEnd])
	if v2 {
		var err error
		if epoch, err = binary.ReadUvarint(rd); err != nil || epoch == 0 {
			return fail("epoch")
		}
	}
	blobLen, err := binary.ReadUvarint(rd)
	if err != nil || blobLen > uint64(rd.Len()) {
		return fail("engine snapshot length")
	}
	blob := make([]byte, blobLen)
	io.ReadFull(rd, blob)
	nq, err := binary.ReadUvarint(rd)
	if err != nil || nq > uint64(rd.Len()) {
		return fail("query count")
	}
	br := bufio.NewReader(rd)
	for i := uint64(0); i < nq; i++ {
		name, err := readShortString(br)
		if err != nil {
			return fail("query name")
		}
		h, ok := p.hubs[name]
		if !ok {
			return fail(fmt.Sprintf("snapshot names unregistered query %q", name))
		}
		cut, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("delivery cut")
		}
		n, err := binary.ReadUvarint(br)
		if err != nil || n > cut+1 {
			return fail("retained entry count")
		}
		entries := make([]hubEntry, 0, n)
		for j := uint64(0); j < n; j++ {
			seq, err := binary.ReadUvarint(br)
			if err != nil || seq > cut {
				return fail("retained entry seq")
			}
			payload, err := readLenBytes(br)
			if err != nil {
				return fail("retained entry payload")
			}
			elem, rest, err := h.codec.Decode(payload)
			if err != nil || len(rest) != 0 {
				return fail("retained entry element")
			}
			entries = append(entries, hubEntry{seq: seq, elem: elem})
		}
		h.seed(entries, cut)
	}
	return blob, epoch, nil
}

func readLenBytes(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Shutdown drains gracefully: stop accepting, sever producers (their
// in-flight frames commit), drain the runtime into the hubs, take a
// final checkpoint (whose barrier reaches attached standbys), send the
// feed's end-of-stream record, let subscribers consume the tail, then
// send end-of-stream markers and close. Safe to call once.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return s.Wait()
	}
	s.stopping = true
	producers := make([]net.Conn, 0, len(s.producers))
	for _, c := range s.producers {
		producers = append(producers, c)
	}
	s.mu.Unlock()

	s.cfg.Listener.Close()
	if s.cfg.ReplListener != nil {
		s.cfg.ReplListener.Close()
	}
	close(s.tickStop)
	s.tickWg.Wait()

	if s.stb != nil {
		s.stb.stop()
	}

	for _, c := range producers {
		c.Close()
	}
	s.acceptWg.Wait() // producer ingest committed and done

	p := s.pack()
	var err error
	if p != nil && p.rt != nil {
		p.rt.Close()
		err = p.rt.Wait() // all deliveries have reached the hubs
	}

	if s.cfg.CheckpointPath != "" && p != nil && p.rt != nil {
		if cerr := s.CheckpointNow(); err == nil {
			err = cerr
		}
	}

	drainBy := s.cfg.DrainTimeout
	if drainBy <= 0 {
		drainBy = 10 * time.Second
	}

	// Hand the tail to attached standbys: the final barrier above is
	// already in the feed; the end record tells them the stream is
	// complete (promote-on-end, not crash recovery).
	if s.repl != nil {
		s.repl.appendEnd()
		s.repl.waitDrained(drainBy)
		s.repl.close()
	}
	s.closeReplicaConns()
	s.replWg.Wait()

	// Let connected subscribers consume everything, then end streams.
	if p != nil {
		deadline := time.Now().Add(drainBy)
		for !allDrained(p.hubs) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		for _, h := range p.hubs {
			h.end()
		}
	}
	s.subWg.Wait()

	s.finish(err)
	return err
}

func (s *Server) closeReplicaConns() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.replConns))
	for c := range s.replConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func allDrained(hubs map[string]*hub) bool {
	for _, h := range hubs {
		if !h.drained() {
			return false
		}
	}
	return true
}

// Kill is the in-process kill -9: the runtime aborts mid-element, every
// connection is severed, nothing further is checkpointed. Use New with
// the same Config (and checkpoint path) to restart in place, or let an
// attached standby promote.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return
	}
	s.stopping = true
	s.killed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	p := s.pack()
	if p != nil && p.rt != nil {
		p.rt.Kill()
	}
	s.cfg.Listener.Close()
	if s.cfg.ReplListener != nil {
		s.cfg.ReplListener.Close()
	}
	close(s.tickStop)
	s.tickWg.Wait()
	if s.stb != nil {
		s.stb.kill()
	}
	if s.repl != nil {
		s.repl.close()
	}
	for _, c := range conns {
		c.Close()
	}
	if p != nil {
		for _, h := range p.hubs {
			h.kill()
		}
	}
	s.acceptWg.Wait()
	s.replWg.Wait()
	s.subWg.Wait()
	var err error
	if p != nil && p.rt != nil {
		p.rt.Close()
		err = p.rt.Wait()
		if errors.Is(err, engine.ErrKilled) {
			err = nil
		}
	}
	s.finish(err)
}

func (s *Server) finish(err error) {
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	select {
	case <-s.done:
		return
	default:
	}
	s.doneErr = err
	close(s.done)
}

// Wait blocks until the server has fully stopped (Shutdown or Kill)
// and returns its terminal error.
func (s *Server) Wait() error {
	<-s.done
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	return s.doneErr
}
