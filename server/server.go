package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"punctsafe/engine"
	"punctsafe/stream"
)

// serverCkptMagic seals the server checkpoint: the engine snapshot plus
// every hub's retained deliveries at the same cut, in one atomic file.
//
//	"PSRVCK01" uvarint(len(engineBlob)) engineBlob
//	uvarint(nqueries) { str(name) uvarint(cut) uvarint(nentries)
//	                    { uvarint(seq) uvarint(len) codecPayload } }
//	crc32-IEEE(everything before)
const serverCkptMagic = "PSRVCK01"

// ErrCorruptServerCheckpoint classifies an unreadable server snapshot.
var ErrCorruptServerCheckpoint = errors.New("server: corrupt checkpoint")

// Config assembles a Server.
type Config struct {
	// Listener accepts producer and subscriber connections (TCP or unix
	// socket). The server owns it and closes it on shutdown.
	Listener net.Listener
	// Build registers schemes and queries on a fresh DSMS. It runs once
	// at startup and again (on a fresh DSMS) when restoring from a
	// checkpoint, so it must be deterministic.
	Build func(*engine.DSMS) error
	// Schemas are the input stream schemas producers may send.
	Schemas []*stream.Schema
	// Runtime tunes the wrapped runtime (error policy, buffers).
	Runtime engine.RuntimeOptions
	// CheckpointPath, when set, enables durability: the server restores
	// from this file at startup when it exists, checkpoints to it every
	// CheckpointEvery (and at graceful shutdown), and acks producers
	// with the durable offsets each checkpoint commits. Empty disables
	// checkpoints AND producer acks.
	CheckpointPath  string
	CheckpointEvery time.Duration
	// QueueLimit bounds a subscriber's pending backlog before the slow
	// consumer policy applies (default 256). Must be ≤ Retain.
	QueueLimit int
	// Retain is how many recent deliveries each query keeps for
	// reconnecting subscribers (default 1024). A subscriber resuming
	// below the retention floor is rejected with ErrResumeExpired.
	Retain int
	// Slow selects the slow-consumer policy (default SlowBlock).
	Slow SlowPolicy
	// DrainTimeout bounds how long a graceful Shutdown waits for
	// connected subscribers to consume the final deliveries before
	// ending their streams anyway (default 10s).
	DrainTimeout time.Duration
	// Logf, when set, receives server lifecycle and connection logs.
	Logf func(format string, args ...any)
}

// Server wraps a runtime behind a listener. See the package comment for
// the HA contract.
type Server struct {
	cfg  Config
	d    *engine.DSMS
	rt   *engine.Runtime
	hubs map[string]*hub

	mu        sync.Mutex
	producers map[string]net.Conn // active producer conn per source
	conns     map[net.Conn]struct{}
	stopping  bool
	killed    bool

	ckptMu sync.Mutex // serializes checkpoints and the acks they send

	acceptWg sync.WaitGroup // accept loop + connection handlers
	subWg    sync.WaitGroup // subscriber writers (drain after runtime)
	tickStop chan struct{}
	tickWg   sync.WaitGroup

	doneMu  sync.Mutex
	doneErr error
	done    chan struct{}
}

// New builds the DSMS, restores from cfg.CheckpointPath when the file
// exists (fresh start otherwise), and begins serving on cfg.Listener.
func New(cfg Config) (*Server, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("server: Config.Listener is required")
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("server: Config.Build is required")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 256
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 1024
	}
	if cfg.QueueLimit > cfg.Retain {
		return nil, fmt.Errorf("server: QueueLimit %d exceeds Retain %d (reconnect resume would be impossible)", cfg.QueueLimit, cfg.Retain)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	d := engine.New()
	if err := cfg.Build(d); err != nil {
		return nil, fmt.Errorf("server: build: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		d:         d,
		hubs:      make(map[string]*hub),
		producers: make(map[string]net.Conn),
		conns:     make(map[net.Conn]struct{}),
		tickStop:  make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, name := range d.Queries() {
		reg, _ := d.Get(name)
		h := newHub(name, reg.OutputSchema(), cfg.Retain, cfg.QueueLimit, cfg.Slow)
		h.onDrop = func(query string, elem stream.Element, seq uint64) {
			s.rt.AddDeadLetter(engine.DeadLetter{
				Query: query,
				Elem:  elem,
				Err:   fmt.Errorf("server: delivery %d dropped: subscriber backlog over %d (policy %v)", seq, cfg.QueueLimit, cfg.Slow),
			})
		}
		reg.SetDeliveryHook(h.publish)
		s.hubs[name] = h
	}

	var blob []byte
	if cfg.CheckpointPath != "" {
		raw, err := os.ReadFile(cfg.CheckpointPath)
		switch {
		case err == nil:
			if blob, err = s.restoreEnvelope(raw); err != nil {
				return nil, err
			}
		case errors.Is(err, os.ErrNotExist):
			// fresh start
		default:
			return nil, fmt.Errorf("server: reading checkpoint: %w", err)
		}
	}
	if blob != nil {
		rt, err := d.RestoreRuntime(bytes.NewReader(blob), cfg.Runtime)
		if err != nil {
			return nil, fmt.Errorf("server: restore: %w", err)
		}
		s.rt = rt
		cfg.Logf("punctserve: restored from %s", cfg.CheckpointPath)
	} else {
		s.rt = d.RunSharded(cfg.Runtime)
	}

	s.acceptWg.Add(1)
	go s.acceptLoop()
	if cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0 {
		s.tickWg.Add(1)
		go s.checkpointLoop()
	}
	cfg.Logf("punctserve: serving on %s", cfg.Listener.Addr())
	return s, nil
}

// Addr returns the listener address (handy with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.cfg.Listener.Addr() }

// Runtime exposes the wrapped runtime for stats and dead letters.
func (s *Server) Runtime() *engine.Runtime { return s.rt }

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		c, err := s.cfg.Listener.Accept()
		if err != nil {
			return // listener closed by Shutdown/Kill
		}
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.acceptWg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) serveConn(c net.Conn) {
	defer s.acceptWg.Done()
	br := bufio.NewReader(c)
	h, err := readHello(br)
	if err != nil {
		writeReject(c, err)
		s.dropConn(c)
		return
	}
	switch h.role {
	case roleProduce:
		s.serveProducer(c, br, h)
	case roleSub:
		s.serveSubscriber(c, br, h)
	}
}

// serveProducer ingests one producer connection: handshake, resume
// preamble, then raw wire frames committed through the engine's
// offset-exact ingest path. Acks ride the checkpoint loop, not this
// goroutine.
func (s *Server) serveProducer(c net.Conn, br *bufio.Reader, h hello) {
	s.mu.Lock()
	if _, busy := s.producers[h.name]; busy {
		s.mu.Unlock()
		writeReject(c, fmt.Errorf("%w: source %q already has an active producer", ErrSourceBusy, h.name))
		s.dropConn(c)
		return
	}
	s.producers[h.name] = c
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.producers, h.name)
		s.mu.Unlock()
		s.dropConn(c)
	}()

	resume := s.rt.ResumeOffset(h.name)
	reply := append([]byte(replyOK), binary.AppendUvarint(nil, uint64(resume))...)
	if _, err := c.Write(reply); err != nil {
		return
	}
	start, err := binary.ReadUvarint(br)
	if err != nil {
		return
	}
	if int64(start) > resume {
		writeReject(c, fmt.Errorf("%w: producer starts at %d, server resumes at %d", ErrBadResume, start, resume))
		return
	}
	// The producer replays from its own buffer floor; skip the prefix
	// the runtime has already committed so the reader lands exactly on
	// the resume offset.
	if skip := resume - int64(start); skip > 0 {
		if _, err := io.CopyN(io.Discard, br, skip); err != nil {
			return
		}
	}
	n, err := s.rt.IngestWireResume(h.name, &drainBoundaryReader{br: br}, s.cfg.Schemas...)
	if err != nil && !s.teardownErr() {
		s.cfg.Logf("punctserve: producer %q: after %d elements: %v", h.name, n, err)
	}
}

// drainBoundaryReader signals engine.ErrWouldBlock exactly once each
// time the buffered bytes run out, so the ingest loop commits whatever
// the producer has sent before the read actually blocks — a connection
// that pauses mid-stream still has all its complete frames committed.
type drainBoundaryReader struct {
	br       *bufio.Reader
	signaled bool
}

func (d *drainBoundaryReader) Read(p []byte) (int, error) {
	if !d.signaled && d.br.Buffered() == 0 {
		d.signaled = true
		return 0, engine.ErrWouldBlock
	}
	d.signaled = false
	return d.br.Read(p)
}

// teardownErr reports whether connection errors are expected because
// the server itself is closing conns.
func (s *Server) teardownErr() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopping || s.killed
}

// serveSubscriber streams seq-stamped deliveries for one query.
func (s *Server) serveSubscriber(c net.Conn, br *bufio.Reader, h hello) {
	hub, ok := s.hubs[h.name]
	if !ok {
		writeReject(c, fmt.Errorf("%w: %q", ErrUnknownQuery, h.name))
		s.dropConn(c)
		return
	}
	cur, err := hub.attach(h.hint)
	if err != nil {
		writeReject(c, err)
		s.dropConn(c)
		return
	}
	reg, _ := s.d.Get(h.name)
	reply := append([]byte(replyOK), binary.AppendUvarint(nil, h.hint)...)
	reply = appendSchema(reply, reg.OutputSchema())
	if _, err := c.Write(reply); err != nil {
		hub.detach(cur)
		s.dropConn(c)
		return
	}

	// A reader goroutine watches for the peer closing (or sending
	// anything unexpected) so a dead subscriber can never wedge a
	// SlowBlock publisher: conn death detaches the cursor.
	s.subWg.Add(1)
	go func() {
		defer s.subWg.Done()
		io.Copy(io.Discard, br)
		hub.detach(cur)
		c.Close()
	}()

	s.subWg.Add(1)
	go func() {
		defer s.subWg.Done()
		defer hub.detach(cur)
		defer s.dropConn(c)
		bw := bufio.NewWriter(c)
		var batch []hubEntry
		var payload []byte
		for {
			var ended bool
			var err error
			batch, ended, err = hub.collect(cur, batch[:0], 64)
			if err != nil {
				return
			}
			if ended {
				bw.Write(binary.AppendUvarint(nil, 0)) // end-of-stream
				bw.Flush()
				return
			}
			for _, e := range batch {
				payload, err = hub.codec.Encode(payload[:0], e.elem)
				if err != nil {
					s.cfg.Logf("punctserve: subscriber %q: encode: %v", h.name, err)
					return
				}
				var hdr [2 * binary.MaxVarintLen64]byte
				n := binary.PutUvarint(hdr[:], e.seq)
				n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
				if _, err := bw.Write(hdr[:n]); err != nil {
					return
				}
				if _, err := bw.Write(payload); err != nil {
					return
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()
}

func (s *Server) checkpointLoop() {
	defer s.tickWg.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
			if err := s.CheckpointNow(); err != nil && !s.teardownErr() {
				s.cfg.Logf("punctserve: checkpoint: %v", err)
			}
		}
	}
}

// CheckpointNow takes one durable checkpoint — the engine snapshot and
// every hub's retained ring at the same cut, in one atomic file — then
// acks every connected producer with its durable offset.
func (s *Server) CheckpointNow() error {
	if s.cfg.CheckpointPath == "" {
		return fmt.Errorf("server: no checkpoint path configured")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	var engineBuf bytes.Buffer
	sum, err := s.rt.CheckpointSummary(&engineBuf)
	if err != nil {
		return err
	}
	body := append([]byte(serverCkptMagic), binary.AppendUvarint(nil, uint64(engineBuf.Len()))...)
	body = append(body, engineBuf.Bytes()...)
	body = binary.AppendUvarint(body, uint64(len(s.hubs)))
	var payload []byte
	for _, name := range s.d.Queries() {
		h := s.hubs[name]
		cut := sum.Delivered[name]
		entries := h.snapshot(cut)
		body = binary.AppendUvarint(body, uint64(len(name)))
		body = append(body, name...)
		body = binary.AppendUvarint(body, cut)
		body = binary.AppendUvarint(body, uint64(len(entries)))
		for _, e := range entries {
			if payload, err = h.codec.Encode(payload[:0], e.elem); err != nil {
				return fmt.Errorf("server: checkpoint encode: %w", err)
			}
			body = binary.AppendUvarint(body, e.seq)
			body = binary.AppendUvarint(body, uint64(len(payload)))
			body = append(body, payload...)
		}
	}
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))

	tmp := s.cfg.CheckpointPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.cfg.CheckpointPath)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}

	// Ack producers with the offsets this checkpoint made durable: a
	// client may trim its replay buffer up to (and resume from) exactly
	// these — never the live offsets, which a crash would rewind.
	s.mu.Lock()
	acks := make(map[net.Conn]int64, len(s.producers))
	for source, c := range s.producers {
		if off, ok := sum.Offsets[source]; ok {
			acks[c] = off
		}
	}
	s.mu.Unlock()
	for c, off := range acks {
		c.Write(binary.AppendUvarint(nil, uint64(off)))
	}
	return nil
}

// restoreEnvelope validates a server checkpoint, seeds the hubs from
// its retained rings, and returns the embedded engine snapshot.
func (s *Server) restoreEnvelope(raw []byte) ([]byte, error) {
	fail := func(what string) ([]byte, error) {
		return nil, fmt.Errorf("%w: %s", ErrCorruptServerCheckpoint, what)
	}
	if len(raw) < len(serverCkptMagic)+4 || string(raw[:len(serverCkptMagic)]) != serverCkptMagic {
		return fail("bad magic")
	}
	bodyEnd := len(raw) - 4
	if crc32.ChecksumIEEE(raw[:bodyEnd]) != binary.LittleEndian.Uint32(raw[bodyEnd:]) {
		return fail("checksum mismatch")
	}
	rd := bytes.NewReader(raw[len(serverCkptMagic):bodyEnd])
	blobLen, err := binary.ReadUvarint(rd)
	if err != nil || blobLen > uint64(rd.Len()) {
		return fail("engine snapshot length")
	}
	blob := make([]byte, blobLen)
	io.ReadFull(rd, blob)
	nq, err := binary.ReadUvarint(rd)
	if err != nil || nq > uint64(rd.Len()) {
		return fail("query count")
	}
	br := bufio.NewReader(rd)
	for i := uint64(0); i < nq; i++ {
		name, err := readShortString(br)
		if err != nil {
			return fail("query name")
		}
		h, ok := s.hubs[name]
		if !ok {
			return fail(fmt.Sprintf("snapshot names unregistered query %q", name))
		}
		cut, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("delivery cut")
		}
		n, err := binary.ReadUvarint(br)
		if err != nil || n > cut+1 {
			return fail("retained entry count")
		}
		entries := make([]hubEntry, 0, n)
		for j := uint64(0); j < n; j++ {
			seq, err := binary.ReadUvarint(br)
			if err != nil || seq > cut {
				return fail("retained entry seq")
			}
			payload, err := readLenBytes(br)
			if err != nil {
				return fail("retained entry payload")
			}
			elem, rest, err := h.codec.Decode(payload)
			if err != nil || len(rest) != 0 {
				return fail("retained entry element")
			}
			entries = append(entries, hubEntry{seq: seq, elem: elem})
		}
		h.seed(entries, cut)
	}
	return blob, nil
}

func readLenBytes(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Shutdown drains gracefully: stop accepting, sever producers (their
// in-flight frames commit), drain the runtime into the hubs, take a
// final checkpoint, let subscribers consume the tail, then send
// end-of-stream markers and close. Safe to call once.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return s.Wait()
	}
	s.stopping = true
	producers := make([]net.Conn, 0, len(s.producers))
	for _, c := range s.producers {
		producers = append(producers, c)
	}
	s.mu.Unlock()

	s.cfg.Listener.Close()
	close(s.tickStop)
	s.tickWg.Wait()
	for _, c := range producers {
		c.Close()
	}
	s.acceptWg.Wait() // producer ingest committed and done

	s.rt.Close()
	err := s.rt.Wait() // all deliveries have reached the hubs

	if s.cfg.CheckpointPath != "" {
		if cerr := s.CheckpointNow(); err == nil {
			err = cerr
		}
	}

	// Let connected subscribers consume everything, then end streams.
	drainBy := s.cfg.DrainTimeout
	if drainBy <= 0 {
		drainBy = 10 * time.Second
	}
	deadline := time.Now().Add(drainBy)
	for !s.allDrained() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for _, h := range s.hubs {
		h.end()
	}
	s.subWg.Wait()

	s.finish(err)
	return err
}

func (s *Server) allDrained() bool {
	for _, h := range s.hubs {
		if !h.drained() {
			return false
		}
	}
	return true
}

// Kill is the in-process kill -9: the runtime aborts mid-element, every
// connection is severed, nothing further is checkpointed. Use New with
// the same Config (and checkpoint path) to fail over.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return
	}
	s.stopping = true
	s.killed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.rt.Kill()
	s.cfg.Listener.Close()
	close(s.tickStop)
	s.tickWg.Wait()
	for _, c := range conns {
		c.Close()
	}
	for _, h := range s.hubs {
		h.kill()
	}
	s.acceptWg.Wait()
	s.subWg.Wait()
	s.rt.Close()
	err := s.rt.Wait()
	if errors.Is(err, engine.ErrKilled) {
		err = nil
	}
	s.finish(err)
}

func (s *Server) finish(err error) {
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	select {
	case <-s.done:
		return
	default:
	}
	s.doneErr = err
	close(s.done)
}

// Wait blocks until the server has fully stopped (Shutdown or Kill)
// and returns its terminal error.
func (s *Server) Wait() error {
	<-s.done
	s.doneMu.Lock()
	defer s.doneMu.Unlock()
	return s.doneErr
}
