package server_test

// The serving-layer acceptance suite. The headline test extends the
// engine's crash-equivalence guarantee across the network boundary:
// kill the server mid-stream at seeded crash points, restart it from
// the latest checkpoint, let the clients reconnect on their own, and
// require the subscriber-observed delivery stream — tuples,
// punctuations, order, and sequence numbers — to be element-for-element
// identical to an uninterrupted run. Zero loss, zero duplicates.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"punctsafe/engine"
	"punctsafe/internal/faultinject"
	"punctsafe/server"
	"punctsafe/stream"
	"punctsafe/workload"
)

const testQuery = "auction"

func buildAuction(d *engine.DSMS) error {
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	_, err := d.Register(testQuery, workload.AuctionQuery(), engine.Options{EnforcePromises: true})
	return err
}

func auctionFeed() []workload.Input {
	return workload.Auction(workload.AuctionConfig{
		Items: 60, MaxBidsPerItem: 4, OpenWindow: 3,
		PunctuateItems: true, PunctuateClose: true, Seed: 11,
	})
}

// referenceDeliveries runs the query in-process, uninterrupted, and
// returns every delivery as "seq|elem" in order — the ground truth the
// network path must reproduce exactly.
func referenceDeliveries(t testing.TB, feed []workload.Input) []string {
	t.Helper()
	d := engine.New()
	if err := buildAuction(d); err != nil {
		t.Fatal(err)
	}
	reg, _ := d.Get(testQuery)
	var out []string
	reg.SetDeliveryHook(func(seq uint64, e stream.Element) {
		out = append(out, fmt.Sprintf("%d|%s", seq, e))
	})
	rt := d.RunSharded(engine.RuntimeOptions{})
	for _, it := range feed {
		if err := rt.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	return out
}

func listenUnix(t testing.TB, path string) net.Listener {
	t.Helper()
	os.Remove(path)
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func testDialer(addr string) *server.Dialer {
	// Generous retries: a failover test window spans a kill, a restart,
	// and an engine restore.
	return &server.Dialer{
		Addr:       "unix://" + addr,
		MaxRetries: 100,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
	}
}

// collectAsync drains a subscriber until EOF on its own goroutine.
func collectAsync(sub *server.Subscriber) (<-chan []server.Delivery, <-chan error) {
	out := make(chan []server.Delivery, 1)
	errc := make(chan error, 1)
	go func() {
		ds, err := sub.Collect()
		out <- ds
		errc <- err
	}()
	return out, errc
}

// collectNAsync gathers exactly n deliveries then stops — for chaos
// runs, where the clean end-of-stream marker may be severed by an
// injected reset and the expected count is known up front. Loss still
// fails (fewer than n arrive → timeout), duplication still fails (Next
// yields strictly increasing seqs, so an extra delivery would displace
// an expected one in the comparison).
func collectNAsync(sub *server.Subscriber, n int) (<-chan []server.Delivery, <-chan error) {
	out := make(chan []server.Delivery, 1)
	errc := make(chan error, 1)
	go func() {
		var ds []server.Delivery
		var err error
		for len(ds) < n {
			var d server.Delivery
			if d, err = sub.Next(); err != nil {
				break
			}
			ds = append(ds, d)
		}
		if err == io.EOF {
			err = nil
		}
		out <- ds
		errc <- err
	}()
	return out, errc
}

// waitIngested polls until the server has committed every byte the
// producer encoded.
func waitIngested(t testing.TB, s *server.Server, p *server.Producer, source string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Runtime().ResumeOffset(source) != p.Sent() {
		// Re-flush each round: an idle producer only notices a dead
		// connection (and replays) when it next touches it.
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stuck at offset %d, producer sent %d",
				s.Runtime().ResumeOffset(source), p.Sent())
		}
		time.Sleep(time.Millisecond)
	}
}

func deliveryStrings(ds []server.Delivery) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("%d|%s", d.Seq, d.Elem)
	}
	return out
}

func requireSameStream(t testing.TB, label string, got, want []string) {
	t.Helper()
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Fatalf("%s: delivery %d: got %q, want %q", label, i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: got %d deliveries, want %d", label, len(got), len(want))
	}
}

func TestServeBasic(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)

	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener:       listenUnix(t, sock),
		Build:          buildAuction,
		Schemas:        []*stream.Schema{item, bid},
		CheckpointPath: filepath.Join(dir, "ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}

	dl := testDialer(sock)
	sub, err := dl.Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, errc := collectAsync(sub)

	prod, err := dl.Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, srv, prod, "feed")
	prod.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("subscriber: %v", err)
	}
	requireSameStream(t, "basic", deliveryStrings(<-got), want)
}

// TestCrashFailoverEquivalence is the acceptance headline: at each
// seeded crash point the server checkpoints, keeps serving, is killed
// mid-stream (engine aborted mid-element, every socket severed, no
// goodbye), restarts from the checkpoint file, and the clients
// reconnect and resume by themselves. The subscriber must observe the
// exact uninterrupted delivery stream.
func TestCrashFailoverEquivalence(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	for _, k := range faultinject.CrashPoints(len(feed), 3, 1207) {
		k := k
		t.Run(fmt.Sprintf("crash_at_%d", k), func(t *testing.T) {
			runFailover(t, feed, want, k, nil, false)
		})
	}
}

// TestCrashFailoverChaos repeats the failover run with a chaos dialer
// on both clients (partial reads/writes, latency spikes, injected
// resets every few KB) and maximal replay duplication
// (ReplayFromAck): every reconnect resends from the durable ack floor,
// so the server's offset dedup and the subscriber's seq dedup are both
// exercised hard. The delivered stream must still be exact.
func TestCrashFailoverChaos(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)
	ks := faultinject.CrashPoints(len(feed), 2, 4099)
	for i, k := range ks {
		k, seed := k, int64(7300+i)
		t.Run(fmt.Sprintf("crash_at_%d", k), func(t *testing.T) {
			chaos := faultinject.ChaosConfig{
				Seed:         seed,
				PartialReads: true, PartialWrites: true,
				MaxDelay: 50 * time.Microsecond,
				CutAfter: 4096, CutJitter: 4096,
			}
			runFailover(t, feed, want, k, &chaos, true)
		})
	}
}

func runFailover(t *testing.T, feed []workload.Input, want []string, k int, chaos *faultinject.ChaosConfig, replayFromAck bool) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	ckpt := filepath.Join(dir, "ckpt")
	item, bid := workload.AuctionSchemas()
	cfg := server.Config{
		Build:          buildAuction,
		Schemas:        []*stream.Schema{item, bid},
		CheckpointPath: ckpt,
	}

	cfg.Listener = listenUnix(t, sock)
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dl := testDialer(sock)
	subDl, prodDl := dl, dl
	if chaos != nil {
		// ChaosDialer needs a base dial func; build it from the addr.
		base := func() (net.Conn, error) { return net.Dial("unix", sock) }
		p, s := *dl, *dl
		c1, c2 := *chaos, *chaos
		c2.Seed = chaos.Seed + 1
		p.Dial = faultinject.ChaosDialer(base, c1)
		s.Dial = faultinject.ChaosDialer(base, c2)
		prodDl, subDl = &p, &s
	}

	sub, err := subDl.Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	var got <-chan []server.Delivery
	var errc <-chan error
	if chaos != nil {
		got, errc = collectNAsync(sub, len(want))
	} else {
		got, errc = collectAsync(sub)
	}

	prod, err := prodDl.Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	prod.ReplayFromAck = replayFromAck

	send := func(from, to int) {
		for _, it := range feed[from:to] {
			if err := prod.Send(it.Stream, it.Elem); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	send(0, k)
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	post := k + 25
	if post > len(feed) {
		post = len(feed)
	}
	send(k, post)

	srv.Kill() // engine aborted mid-element, sockets severed

	cfg.Listener = listenUnix(t, sock)
	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	send(post, len(feed))
	waitIngested(t, srv2, prod, "feed")
	prod.Close()
	if chaos != nil {
		// Collect the known-size stream first, then shut down: under
		// chaos the end marker itself can be severed mid-write.
		if err := <-errc; err != nil {
			t.Fatalf("subscriber after failover: %v", err)
		}
		requireSameStream(t, "failover", deliveryStrings(<-got), want)
		sub.Close()
		if err := srv2.Shutdown(); err != nil {
			t.Fatalf("shutdown after failover: %v", err)
		}
		return
	}
	if err := srv2.Shutdown(); err != nil {
		t.Fatalf("shutdown after failover: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("subscriber after failover: %v", err)
	}
	requireSameStream(t, "failover", deliveryStrings(<-got), want)
}

func TestSourceBusy(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener: listenUnix(t, sock),
		Build:    buildAuction,
		Schemas:  []*stream.Schema{item, bid},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()

	dl := testDialer(sock)
	p1, err := dl.Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	dl2 := testDialer(sock)
	dl2.MaxRetries = 1
	if _, err := dl2.Producer("feed", item, bid); err == nil {
		t.Fatal("second producer for the same source was accepted")
	} else if !errors.Is(err, server.ErrRejected) && !contains(err, server.ErrSourceBusy) {
		t.Fatalf("want a source-busy rejection, got %v", err)
	}
}

func TestUnknownQuery(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener: listenUnix(t, sock),
		Build:    buildAuction,
		Schemas:  []*stream.Schema{item, bid},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()

	dl := testDialer(sock)
	dl.MaxRetries = 1
	if _, err := dl.Subscribe("nope"); err == nil {
		t.Fatal("subscribing to an unknown query succeeded")
	} else if !contains(err, server.ErrUnknownQuery) {
		t.Fatalf("want an unknown-query rejection, got %v", err)
	}
}

func contains(err, sentinel error) bool {
	return err != nil && sentinel != nil &&
		len(err.Error()) >= len(sentinel.Error()) &&
		(errors.Is(err, sentinel) || stringsContains(err.Error(), sentinel.Error()))
}

func stringsContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSubscriberReconnectResume severs the subscriber's connection
// mid-stream (without touching the server) and requires Next to resume
// without loss or duplication.
func TestSubscriberReconnectResume(t *testing.T) {
	feed := auctionFeed()
	want := referenceDeliveries(t, feed)

	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener:       listenUnix(t, sock),
		Build:          buildAuction,
		Schemas:        []*stream.Schema{item, bid},
		CheckpointPath: filepath.Join(dir, "ckpt"),
		Retain:         1 << 16, // keep everything: this test lags on purpose
		QueueLimit:     1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A chaos dialer with a byte budget: the subscriber's conn is cut
	// every ~2KB, mid-frame wherever the budget lands.
	base := func() (net.Conn, error) { return net.Dial("unix", sock) }
	dl := testDialer(sock)
	dl.Dial = faultinject.ChaosDialer(base, faultinject.ChaosConfig{
		Seed: 99, CutAfter: 2048, CutJitter: 1024,
	})
	sub, err := dl.Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, errc := collectNAsync(sub, len(want))

	prodDl := testDialer(sock)
	prod, err := prodDl.Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, srv, prod, "feed")
	prod.Close()
	if err := <-errc; err != nil {
		t.Fatalf("subscriber: %v", err)
	}
	requireSameStream(t, "reconnect-resume", deliveryStrings(<-got), want)
	sub.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestProducerAcksTrimBuffer pins the durability contract: acks carry
// only checkpoint-committed offsets, and the replay buffer shrinks to
// the unacked suffix.
func TestProducerAcksTrimBuffer(t *testing.T) {
	feed := auctionFeed()
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener:       listenUnix(t, sock),
		Build:          buildAuction,
		Schemas:        []*stream.Schema{item, bid},
		CheckpointPath: filepath.Join(dir, "ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}

	dl := testDialer(sock)
	prod, err := dl.Producer("feed", item, bid)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range feed {
		if err := prod.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	waitIngested(t, srv, prod, "feed")
	if prod.Acked() > 0 {
		t.Fatalf("acked %d bytes before any checkpoint", prod.Acked())
	}
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for prod.Acked() != prod.Sent() {
		if time.Now().After(deadline) {
			t.Fatalf("ack stuck at %d, sent %d", prod.Acked(), prod.Sent())
		}
		time.Sleep(time.Millisecond)
	}
	if prod.Buffered() != 0 {
		t.Fatalf("replay buffer holds %d bytes past the ack floor", prod.Buffered())
	}
	prod.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulShutdownEndsSubscribers pins the drain order: Shutdown
// must deliver everything already ingested, then send the end marker.
func TestGracefulShutdownEndsSubscribers(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	item, bid := workload.AuctionSchemas()
	srv, err := server.New(server.Config{
		Listener: listenUnix(t, sock),
		Build:    buildAuction,
		Schemas:  []*stream.Schema{item, bid},
	})
	if err != nil {
		t.Fatal(err)
	}
	dl := testDialer(sock)
	sub, err := dl.Subscribe(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var subErr error
	go func() {
		defer wg.Done()
		_, subErr = sub.Collect()
	}()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if subErr != nil && subErr != io.EOF {
		t.Fatalf("subscriber did not end cleanly: %v", subErr)
	}
}
