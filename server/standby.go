package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"punctsafe/engine"
)

// Replication, standby side.
//
// A standby is a full Server whose engine is driven by the primary's
// replication feed instead of producer connections. The tail loop
// dials the primary, installs the snapshot carried by the replica
// handshake, then applies feed records synchronously in feed order —
// which is the primary's ingress order, so the standby's engine walks
// through the same state (and assigns the same delivery sequence
// numbers) as the primary's.
//
// On primary loss (feed connection dies and stays dead for
// PromoteTimeout despite redials) the standby promotes: it bumps the
// fencing epoch past the primary's and starts serving data roles.
// Producers and subscribers re-run their offset/seq resume protocol
// against it exactly as they would against a restarted primary. The
// bumped epoch fences the old primary — any client that has spoken to
// the new primary carries the higher epoch in its hello, and a revived
// old primary seeing it refuses to serve.

// errFeedEnded marks a graceful feed end (primary Shutdown): the
// stream is complete, not lost.
var errFeedEnded = fmt.Errorf("server: replication feed ended cleanly")

// maxSnapshot bounds the replica-handshake snapshot transfer.
const maxSnapshot = 1 << 30

type standbyRunner struct {
	s     *Server
	stopC chan struct{}
	wg    sync.WaitGroup

	mu        sync.Mutex
	conn      net.Conn // live feed connection (closed by stopNow)
	installed bool
	primary   string // primary's advertised client address (for redirects)
	promoted  bool
	promotedC chan struct{}
	stopOnce  sync.Once
}

func newStandbyRunner(s *Server) *standbyRunner {
	return &standbyRunner{s: s, stopC: make(chan struct{}), promotedC: make(chan struct{})}
}

func (r *standbyRunner) start() {
	r.wg.Add(1)
	go r.run()
}

func (r *standbyRunner) stopNow() {
	r.stopOnce.Do(func() { close(r.stopC) })
	r.mu.Lock()
	c := r.conn
	r.mu.Unlock()
	if c != nil {
		c.Close() // unblock a tail parked in a feed read
	}
}

func (r *standbyRunner) stopped() bool {
	select {
	case <-r.stopC:
		return true
	default:
		return false
	}
}

func (r *standbyRunner) primaryAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

func (r *standbyRunner) isPromoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// dial connects to the primary's replication address.
func (r *standbyRunner) dial() (net.Conn, error) {
	if r.s.cfg.ReplicaDial != nil {
		return r.s.cfg.ReplicaDial(r.s.cfg.ReplicaOf)
	}
	network, addr := "tcp", r.s.cfg.ReplicaOf
	switch {
	case strings.HasPrefix(addr, "tcp://"):
		addr = strings.TrimPrefix(addr, "tcp://")
	case strings.HasPrefix(addr, "unix://"):
		network, addr = "unix", strings.TrimPrefix(addr, "unix://")
	}
	return net.Dial(network, addr)
}

func (r *standbyRunner) sleep(d time.Duration) bool {
	select {
	case <-r.stopC:
		return false
	case <-time.After(d):
		return true
	}
}

// run is the standby's life: dial, install, tail, and on primary loss
// decide between redial and promotion.
func (r *standbyRunner) run() {
	defer r.wg.Done()
	var lostAt time.Time
	for {
		if r.stopped() || r.isPromoted() {
			return
		}
		conn, err := r.dial()
		if err != nil {
			if lostAt.IsZero() {
				lostAt = time.Now()
			}
			if r.maybePromote(lostAt) {
				return
			}
			if !r.sleep(2 * time.Millisecond) {
				return
			}
			continue
		}
		r.mu.Lock()
		r.conn = conn
		r.mu.Unlock()
		if r.stopped() {
			conn.Close()
			return
		}
		err = r.tail(conn)
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		conn.Close()
		switch {
		case r.stopped():
			return
		case err == errFeedEnded:
			// Graceful primary shutdown: the feed is complete. With
			// automatic promotion on, take over (planned handover);
			// otherwise stay a quiescent standby awaiting Promote.
			r.s.cfg.Logf("punctserve: standby: primary ended feed cleanly")
			if r.s.cfg.PromoteTimeout > 0 {
				r.promote()
				return
			}
			lostAt = time.Time{}
		default:
			if !r.s.teardownErr() {
				r.s.cfg.Logf("punctserve: standby: feed lost: %v", err)
			}
			lostAt = time.Now()
			if r.maybePromote(lostAt) {
				return
			}
		}
	}
}

// maybePromote promotes when the feed has been gone past
// PromoteTimeout and a snapshot was ever installed.
func (r *standbyRunner) maybePromote(lostAt time.Time) bool {
	if r.s.cfg.PromoteTimeout <= 0 {
		return false
	}
	r.mu.Lock()
	installed := r.installed
	r.mu.Unlock()
	if !installed {
		return false // nothing to serve: keep dialing
	}
	if time.Since(lostAt) < r.s.cfg.PromoteTimeout {
		return false
	}
	return r.promote()
}

// promote flips the server into primary mode: bump the fencing epoch
// past the dead primary's, persist it, start serving data roles.
func (r *standbyRunner) promote() bool {
	s := r.s
	r.mu.Lock()
	if r.promoted || !r.installed {
		r.mu.Unlock()
		return false
	}
	if s.fenced.Load() || s.teardownErr() {
		r.mu.Unlock()
		return false
	}
	r.promoted = true
	r.mu.Unlock()

	newEpoch := s.epoch.Load() + 1
	// Clients that already rotated through a newer primary may have
	// helloed this standby with a higher epoch than its feed installed;
	// promote past everything observed so the claim is unambiguous.
	if obs := s.observed.Load(); obs >= newEpoch {
		newEpoch = obs + 1
	}
	s.epoch.Store(newEpoch)
	s.standby.Store(false)
	if s.cfg.CheckpointPath != "" {
		if err := s.CheckpointNow(); err != nil {
			s.cfg.Logf("punctserve: promotion checkpoint: %v", err)
		}
	}
	s.startCheckpointLoop()
	s.cfg.Logf("punctserve: PROMOTED to primary at epoch %d, serving on %s", newEpoch, s.cfg.Listener.Addr())
	close(r.promotedC)
	return true
}

// tail runs one feed session: handshake, snapshot install, synchronous
// apply loop. Any error means the session (or primary) is gone; the
// caller decides between redial and promotion.
func (r *standbyRunner) tail(conn net.Conn) error {
	s := r.s
	h := hello{role: roleReplica, token: s.cfg.AuthToken, epoch: s.epoch.Load()}
	if _, err := conn.Write(appendHello(nil, h)); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	epoch, err := readReply(br)
	if err != nil {
		return err
	}
	if own := s.epoch.Load(); epoch < own {
		return fmt.Errorf("server: primary at stale epoch %d (standby has seen %d)", epoch, own)
	}
	primaryAddr, err := readShortString(br)
	if err != nil {
		return fmt.Errorf("server: replica handshake: advertise: %w", err)
	}
	snap, err := readSnapshotBytes(br)
	if err != nil {
		return fmt.Errorf("server: replica handshake: snapshot: %w", err)
	}

	pack, err := r.install(snap, epoch)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.primary = primaryAddr
	r.mu.Unlock()
	s.cfg.Logf("punctserve: standby: installed snapshot (%d bytes) from %s at epoch %d", len(snap), primaryAddr, epoch)

	ap := newApplier(s, pack)
	defer ap.closeAll()
	var ackBuf []byte
	for {
		rec, err := readFeedRecord(br)
		if err != nil {
			return err
		}
		if r.stopped() {
			return fmt.Errorf("server: standby stopping")
		}
		switch rec.kind {
		case recFrame:
			if err := ap.apply(rec); err != nil {
				return err
			}
		case recBarrier:
			// The primary checkpointed: make the applied prefix durable
			// locally, then ack what we hold — the primary gates its
			// producer acks on this floor.
			if s.cfg.CheckpointPath != "" {
				if err := s.CheckpointNow(); err != nil {
					return fmt.Errorf("server: standby checkpoint: %w", err)
				}
			}
			ackBuf = appendAckRecord(ackBuf[:0], pack.rt.SourceOffsets())
			if _, err := conn.Write(ackBuf); err != nil {
				return err
			}
		case recEnd:
			return errFeedEnded
		}
	}
}

// install builds a fresh engine pack from a primary snapshot and swaps
// it in, tearing down the previous incarnation (a reconnect always
// re-seeds: the feed is positional, so a partially-applied session
// cannot be resumed record-exactly).
func (r *standbyRunner) install(snap []byte, epoch uint64) (*enginePack, error) {
	s := r.s
	pack, err := s.newPack()
	if err != nil {
		return nil, err
	}
	blob, _, err := s.restoreEnvelope(pack, snap)
	if err != nil {
		return nil, err
	}
	if err := s.startPack(pack, blob); err != nil {
		return nil, err
	}
	s.epoch.Store(epoch)
	old := s.eng.Swap(pack)
	r.mu.Lock()
	r.installed = true
	r.mu.Unlock()
	if old != nil && old.rt != nil {
		old.rt.Kill()
		for _, h := range old.hubs {
			h.kill()
		}
		old.rt.Close()
		old.rt.Wait()
	}
	return pack, nil
}

// readSnapshotBytes reads the length-prefixed snapshot (bounded, but
// far above readLenBytes' frame-sized cap).
func readSnapshotBytes(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxSnapshot {
		return nil, fmt.Errorf("snapshot length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}

// applier feeds frame records into the standby's engine through the
// same offset-exact ingest path producers use, one long-lived
// IngestWireResume per source, applying synchronously so feed order is
// preserved exactly.
type applier struct {
	s    *Server
	pack *enginePack

	pipes map[string]*feedPipe
	wg    sync.WaitGroup

	errMu sync.Mutex
	err   error
}

func newApplier(s *Server, pack *enginePack) *applier {
	return &applier{s: s, pack: pack, pipes: make(map[string]*feedPipe)}
}

func (a *applier) setErr(err error) {
	a.errMu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.errMu.Unlock()
}

func (a *applier) getErr() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

// apply ingests one frame record, skipping records the installed
// snapshot already covers (the attach-before-snapshot overlap) and
// insisting on offset continuity for everything else.
func (a *applier) apply(rec feedRecord) error {
	if err := a.getErr(); err != nil {
		return err
	}
	rt := a.pack.rt
	resume := rt.ResumeOffset(rec.source)
	end := rec.start + int64(len(rec.frames))
	if end <= resume {
		return nil // duplicate: snapshot cut already covers this record
	}
	if rec.start != resume {
		return fmt.Errorf("server: feed gap on %q: record starts at %d, runtime resumes at %d", rec.source, rec.start, resume)
	}
	p := a.pipe(rec.source)
	if !p.supply(rec.frames) {
		if err := a.getErr(); err != nil {
			return err
		}
		return fmt.Errorf("server: apply pipe for %q closed", rec.source)
	}
	if got := rt.ResumeOffset(rec.source); got != end {
		return fmt.Errorf("server: apply lag on %q: committed %d, want %d", rec.source, got, end)
	}
	return nil
}

func (a *applier) pipe(source string) *feedPipe {
	if p, ok := a.pipes[source]; ok {
		return p
	}
	p := newFeedPipe()
	a.pipes[source] = p
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		if _, err := a.pack.rt.IngestWireResume(source, p, a.s.cfg.Schemas...); err != nil {
			a.setErr(err)
			p.fail()
		}
	}()
	return p
}

// closeAll ends every pipe (clean EOF: the ingest goroutines commit
// their final batch and exit) and waits them out, leaving the engine at
// a consistent applied prefix — exactly what promotion serves from.
func (a *applier) closeAll() {
	for _, p := range a.pipes {
		p.close()
	}
	a.wg.Wait()
}

// feedPipe adapts the synchronous apply loop to IngestWireResume's
// reader contract: Read signals engine.ErrWouldBlock exactly once when
// drained (the commit boundary), then blocks; supply() returns only
// after the reader has consumed everything AND re-entered an idle Read
// — i.e. after the commit for those bytes has completed.
type feedPipe struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	signaled bool // ErrWouldBlock returned since last data
	idle     bool // reader is parked in Wait (commit done)
	closed   bool
	dead     bool
}

func newFeedPipe() *feedPipe {
	p := &feedPipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *feedPipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.closed {
			return 0, io.EOF
		}
		if !p.signaled {
			p.signaled = true
			return 0, engine.ErrWouldBlock
		}
		p.idle = true
		p.cond.Broadcast()
		p.cond.Wait()
		p.idle = false
	}
	p.signaled = false
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

// supply hands bytes to the reader and blocks until they are consumed
// and committed. Returns false when the ingest goroutine died.
func (p *feedPipe) supply(b []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead || p.closed {
		return false
	}
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	for !p.dead && !(p.idle && len(p.buf) == 0) {
		p.cond.Wait()
	}
	return !p.dead
}

// close delivers EOF after the remaining bytes drain.
func (p *feedPipe) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// fail marks the ingest side dead, unblocking supply.
func (p *feedPipe) fail() {
	p.mu.Lock()
	p.dead = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Promote manually promotes a standby to primary (the automatic path
// is Config.PromoteTimeout). It fails on a primary, on a standby that
// has not installed a snapshot yet, or on a fenced server.
func (s *Server) Promote() error {
	if s.stb == nil {
		return fmt.Errorf("server: not a standby")
	}
	if s.fenced.Load() {
		return ErrFenced
	}
	if !s.stb.promote() {
		if s.stb.isPromoted() {
			return nil
		}
		return fmt.Errorf("server: cannot promote: no snapshot installed yet")
	}
	return nil
}

// Promoted returns a channel closed when the standby promotes.
func (s *Server) Promoted() <-chan struct{} {
	if s.stb == nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return s.stb.promotedC
}

// stop ends the standby machinery for graceful shutdown.
func (r *standbyRunner) stop() {
	r.stopNow()
	r.wg.Wait()
}

// kill ends it abruptly (feed conns are closed by the caller).
func (r *standbyRunner) kill() {
	r.stopNow()
	r.wg.Wait()
}
