package server

// White-box tests for the dial session's backoff progression. The
// subtle contract: backoff state persists across connect() calls (a
// client stuck in one outage keeps escalating), but resets after any
// successful handshake — a long-lived client that reconnects after a
// quiet hour must start from Backoff again, not the inflated tail of
// its last outage.

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"
)

// fakeClockDialer returns a Dialer whose sleeps are recorded instead of
// slept and whose jitter is the identity (Rand n -> n/2 makes
// jitter(t) = t/2 + t/2 = t exactly).
func fakeClockDialer(sleeps *[]time.Duration) *Dialer {
	return &Dialer{
		MaxRetries: 16,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond,
		Sleep:      func(d time.Duration) { *sleeps = append(*sleeps, d) },
		Rand:       func(n int64) int64 { return n / 2 },
	}
}

func ms(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v) * time.Millisecond
	}
	return out
}

func sameDurations(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBackoffResetsAfterSuccess drives two outages separated by a
// successful session and requires the second outage to restart the
// progression from Backoff.
func TestBackoffResetsAfterSuccess(t *testing.T) {
	var sleeps []time.Duration
	d := fakeClockDialer(&sleeps)
	attempt := 0
	d.Dial = func() (net.Conn, error) {
		attempt++
		if attempt%4 != 0 { // three failures, then a success
			return nil, errors.New("connection refused")
		}
		client, server := net.Pipe()
		server.Close()
		return client, nil
	}
	ok := func(net.Conn, *bufio.Reader) error { return nil }

	sess := d.newSession()
	c, _, err := d.connect(sess, ok)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if want := ms(10, 20, 40); !sameDurations(sleeps, want) {
		t.Fatalf("first outage slept %v, want %v", sleeps, want)
	}

	// The session reconnects later: the progression must restart at
	// Backoff, not resume at the doubled tail of the last outage.
	sleeps = nil
	c, _, err = d.connect(sess, ok)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if want := ms(10, 20, 40); !sameDurations(sleeps, want) {
		t.Fatalf("post-success outage slept %v, want %v (backoff did not reset)", sleeps, want)
	}
}

// TestBackoffCapsAndPersistsAcrossCalls pins the other half of the
// contract: without an intervening success the progression continues
// across connect() calls and saturates at MaxBackoff.
func TestBackoffCapsAndPersistsAcrossCalls(t *testing.T) {
	var sleeps []time.Duration
	d := fakeClockDialer(&sleeps)
	d.MaxRetries = 5
	down := func() (net.Conn, error) { return nil, errors.New("connection refused") }
	d.Dial = down
	ok := func(net.Conn, *bufio.Reader) error { return nil }

	sess := d.newSession()
	if _, _, err := d.connect(sess, ok); err == nil {
		t.Fatal("connect succeeded with the endpoint down")
	}
	if want := ms(10, 20, 40, 80, 80); !sameDurations(sleeps, want) {
		t.Fatalf("outage slept %v, want %v (cap at MaxBackoff)", sleeps, want)
	}

	// Still no success: the next call continues at the cap.
	sleeps = nil
	if _, _, err := d.connect(sess, ok); err == nil {
		t.Fatal("connect succeeded with the endpoint down")
	}
	if want := ms(80, 80, 80, 80, 80); !sameDurations(sleeps, want) {
		t.Fatalf("continued outage slept %v, want %v (progression lost across calls)", sleeps, want)
	}
}
