package server

// FuzzHandshake hardens the connection front door: arbitrary handshake
// bytes must yield either a well-formed hello or a typed
// ErrBadHandshake — never a panic, a hang, or an unbounded allocation.
// The seed corpus is wired into the fuzzseed gate in make check.

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

func FuzzHandshake(f *testing.F) {
	// Well-formed hellos for every role, with and without auth tokens
	// and fencing epochs.
	f.Add(appendHello(nil, hello{role: roleProduce, name: "feed"}))
	f.Add(appendHello(nil, hello{role: roleSub, name: "auction", hint: 12345}))
	f.Add(appendHello(nil, hello{role: roleSub, token: "s3cret", name: "auction", epoch: 7, hint: 9}))
	f.Add(appendHello(nil, hello{role: roleReplica, epoch: 3}))
	f.Add(appendHello(nil, hello{role: roleProbe}))
	// Truncations at every interesting boundary.
	valid := appendHello(nil, hello{role: roleSub, token: "tk", name: "auction", epoch: 2, hint: 7})
	for _, cut := range []int{0, 1, 4, 5, 6, 7, 9, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Bad magic, bad role, absurd token/name lengths, empty name on a
	// data role, embedded garbage.
	f.Add([]byte("GARBAGE!"))
	f.Add([]byte("PSRV1X\x00\x04feed\x00\x00"))
	f.Add([]byte("PSRV1P\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("PSRV1P\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("PSRV1S\x00\x00\x00\x00"))
	f.Add(append(appendHello(nil, hello{role: roleProduce, name: "feed"}), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		h, err := readHello(br)
		if err != nil {
			if !errors.Is(err, ErrBadHandshake) {
				t.Fatalf("handshake error is not typed: %v", err)
			}
			return
		}
		switch h.role {
		case roleProduce, roleSub, roleReplica, roleProbe:
		default:
			t.Fatalf("accepted hello with role %q", h.role)
		}
		if (h.role == roleProduce || h.role == roleSub) && h.name == "" {
			t.Fatalf("accepted data-role hello with empty name")
		}
		if len(h.name) > maxHandshakeName || len(h.token) > maxHandshakeName {
			t.Fatalf("accepted hello with name %d / token %d bytes", len(h.name), len(h.token))
		}
		// A parsed hello must survive an encode/decode round trip.
		again, err := readHello(bufio.NewReader(bytes.NewReader(appendHello(nil, h))))
		if err != nil || again != h {
			t.Fatalf("round trip: %+v vs %+v (err %v)", h, again, err)
		}
	})
}
