package server

// FuzzHandshake hardens the connection front door: arbitrary handshake
// bytes must yield either a well-formed hello or a typed
// ErrBadHandshake — never a panic, a hang, or an unbounded allocation.
// The seed corpus is wired into the fuzzseed gate in make check.

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

func FuzzHandshake(f *testing.F) {
	// Well-formed hellos for both roles.
	f.Add(appendHello(nil, roleProduce, "feed", 0))
	f.Add(appendHello(nil, roleSub, "auction", 12345))
	// Truncations at every interesting boundary.
	valid := appendHello(nil, roleSub, "auction", 7)
	for _, cut := range []int{0, 1, 4, 5, 6, 7, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Bad magic, bad role, absurd name length, embedded garbage.
	f.Add([]byte("GARBAGE!"))
	f.Add([]byte("PSRV1X\x04feed\x00"))
	f.Add([]byte("PSRV1P\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("PSRV1S\x00"))
	f.Add(append(appendHello(nil, roleProduce, "feed", 0), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		h, err := readHello(br)
		if err != nil {
			if !errors.Is(err, ErrBadHandshake) {
				t.Fatalf("handshake error is not typed: %v", err)
			}
			return
		}
		if h.role != roleProduce && h.role != roleSub {
			t.Fatalf("accepted hello with role %q", h.role)
		}
		if h.name == "" || len(h.name) > maxHandshakeName {
			t.Fatalf("accepted hello with name length %d", len(h.name))
		}
		// A parsed hello must survive an encode/decode round trip.
		again, err := readHello(bufio.NewReader(bytes.NewReader(
			appendHello(nil, h.role, h.name, h.hint))))
		if err != nil || again != h {
			t.Fatalf("round trip: %+v vs %+v (err %v)", h, again, err)
		}
	})
}
