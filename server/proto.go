// Package server is the network serving front-end for the punctuated
// runtime: producers push wire frames over TCP or unix sockets and
// subscribers receive the query's results AND its punctuations, so
// downstream consumers can purge their own state exactly as the paper's
// operators do (punctuations are first-class on the wire, not an
// engine-internal signal).
//
// The HA contract mirrors the engine's crash model: the server takes
// periodic atomic checkpoints (engine snapshot plus the retained
// per-query delivery rings, one file, CRC-sealed), acks producers only
// with durable offsets, and stamps every subscriber delivery with a
// checkpoint-stable sequence number. After a kill -9 the server restarts
// from the latest checkpoint, producers replay their unacked suffix
// (duplicates discarded by offset), subscribers resume at their last
// seen sequence (duplicates discarded by seq), and the observed stream
// is element-for-element identical to an uninterrupted run.
//
// Horizontal failover extends the same contract across boxes: a warm
// standby dials the primary's replication listener, installs a snapshot,
// and tails the ingress-ordered feed (see repl.go / standby.go). Every
// handshake carries a monotonic fencing epoch; a server asked to serve
// by a client that has seen a higher epoch knows it has been superseded
// and self-fences, so a revived old primary can never split the brain.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"punctsafe/stream"
)

// Wire protocol, all integers uvarint unless noted.
//
//	client hello:  "PSRV1" role(1: 'P'|'S'|'R'|'H') tokenLen token
//	               nameLen name epoch resumeHint
//	server ok:     "PSOK1" epoch payload
//	               (producer: resumeOffset; subscriber: resumeSeq schema;
//	                replica: advertiseAddr snapshotLen snapshot;
//	                probe: roleByte n {srcLen src offset}...)
//	server reject: "PSER1" epoch msgLen msg redirLen redirect
//
// epoch is the fencing epoch: the server's current epoch in replies, the
// client's highest observed epoch in hellos (0 = none). A hello whose
// epoch exceeds the server's proves a newer primary was promoted; the
// server self-fences. A reply whose epoch is below the client's proves
// the server is stale; the client abandons it. The redirect field of a
// rejection optionally names the address of the current primary.
//
//	producer data (client→server): startOffset, then raw engine wire
//	frames starting at exactly that offset; server→producer traffic is a
//	stream of uvarint durable-offset acks, one per checkpoint.
//
//	subscriber data (server→client): per delivery
//	  seq(≥1) payloadLen payload      payload = stream.Codec encoding
//	and a single seq=0 as the clean end-of-stream marker.
//
//	replica data: see repl.go (record-framed feed + offset acks).
const (
	protoMagic  = "PSRV1"
	replyOK     = "PSOK1"
	replyErr    = "PSER1"
	roleProduce = 'P'
	roleSub     = 'S'
	roleReplica = 'R'
	roleProbe   = 'H'

	// probe reply role bytes.
	probePrimary = 'P'
	probeStandby = 'B'
	probeFenced  = 'F'

	// maxHandshakeName bounds the stream/query name, auth token, and
	// redirect address so a malformed hello cannot demand an absurd
	// allocation.
	maxHandshakeName = 4096
	// maxErrMsg bounds a rejection message on the client side.
	maxErrMsg = 4096
)

// Typed protocol errors. Server-side rejections travel as text; the
// client wraps them in a RejectedError unwrapping to ErrRejected.
var (
	// ErrBadHandshake classifies malformed hello bytes (bad magic, bad
	// role, oversized or truncated name). Connections failing the
	// handshake are rejected and closed, never serviced.
	ErrBadHandshake = errors.New("server: malformed handshake")
	// ErrUnauthorized rejects a hello whose token does not match the
	// server's configured shared secret.
	ErrUnauthorized = errors.New("server: unauthorized")
	// ErrUnknownQuery rejects a subscriber naming no registered query.
	ErrUnknownQuery = errors.New("server: unknown query")
	// ErrSourceBusy rejects a producer for a source that already has an
	// active connection (offsets are per-source; two writers would
	// interleave unrecoverably).
	ErrSourceBusy = errors.New("server: source busy")
	// ErrResumeExpired rejects a subscriber resuming below the retention
	// floor: deliveries between its last seen sequence and the oldest
	// retained entry are gone, so exactly-once resumption is impossible.
	ErrResumeExpired = errors.New("server: resume window expired")
	// ErrBadResume rejects a producer whose announced start offset is
	// ahead of the server's resume point (bytes in between would be
	// unseen) or behind its own replayable window.
	ErrBadResume = errors.New("server: bad resume offset")
	// ErrNotPrimary rejects producer/subscriber traffic at a standby
	// that has not been promoted; the rejection's redirect names the
	// primary it is replicating from.
	ErrNotPrimary = errors.New("server: not primary")
	// ErrFenced rejects traffic at a server that has observed a higher
	// fencing epoch than its own: a newer primary exists, and serving
	// would risk split-brain.
	ErrFenced = errors.New("server: fenced by newer epoch")
	// ErrRejected wraps a server rejection message on the client side.
	ErrRejected = errors.New("server: rejected")
	// ErrServerClosed is returned by client calls after a clean
	// end-of-stream or explicit Close.
	ErrServerClosed = errors.New("server: closed")
)

// RejectedError is a server rejection as seen by the client: the
// server's message and fencing epoch, plus an optional redirect naming
// the current primary. It unwraps to ErrRejected so errors.Is keeps
// working on the sentinel.
type RejectedError struct {
	Msg      string
	Epoch    uint64
	Redirect string
}

func (e *RejectedError) Error() string {
	if e.Redirect != "" {
		return fmt.Sprintf("%v: %s (primary at %s)", ErrRejected, e.Msg, e.Redirect)
	}
	return fmt.Sprintf("%v: %s", ErrRejected, e.Msg)
}

func (e *RejectedError) Unwrap() error { return ErrRejected }

// hello is a parsed client handshake.
type hello struct {
	role  byte
	token string
	name  string
	epoch uint64 // client's highest observed fencing epoch
	hint  uint64 // producer: unused; subscriber: last delivered seq
}

// readHello parses a client handshake, classifying every malformation
// as ErrBadHandshake. It reads a bounded number of bytes, so a hostile
// or corrupt peer can make it fail but never hang on allocation or
// over-read past the handshake.
func readHello(br *bufio.Reader) (hello, error) {
	var h hello
	var magic [len(protoMagic) + 1]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return h, fmt.Errorf("%w: short hello: %v", ErrBadHandshake, err)
	}
	if string(magic[:len(protoMagic)]) != protoMagic {
		return h, fmt.Errorf("%w: bad magic %q", ErrBadHandshake, magic[:len(protoMagic)])
	}
	h.role = magic[len(protoMagic)]
	switch h.role {
	case roleProduce, roleSub, roleReplica, roleProbe:
	default:
		return h, fmt.Errorf("%w: bad role %q", ErrBadHandshake, h.role)
	}
	var err error
	if h.token, err = readHelloString(br, "token"); err != nil {
		return h, err
	}
	if h.name, err = readHelloString(br, "name"); err != nil {
		return h, err
	}
	// Probes and replicas address the server, not a stream or query;
	// data roles must name their target.
	if h.name == "" && (h.role == roleProduce || h.role == roleSub) {
		return h, fmt.Errorf("%w: empty name", ErrBadHandshake)
	}
	if h.epoch, err = binary.ReadUvarint(br); err != nil {
		return h, fmt.Errorf("%w: epoch: %v", ErrBadHandshake, err)
	}
	if h.hint, err = binary.ReadUvarint(br); err != nil {
		return h, fmt.Errorf("%w: resume hint: %v", ErrBadHandshake, err)
	}
	return h, nil
}

// readHelloString reads one bounded length-prefixed handshake string.
func readHelloString(br *bufio.Reader, field string) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("%w: %s length: %v", ErrBadHandshake, field, err)
	}
	if n > maxHandshakeName {
		return "", fmt.Errorf("%w: %s length %d out of range", ErrBadHandshake, field, n)
	}
	if n == 0 {
		return "", nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", fmt.Errorf("%w: short %s: %v", ErrBadHandshake, field, err)
	}
	return string(b), nil
}

// appendHello encodes a client handshake.
func appendHello(dst []byte, h hello) []byte {
	dst = append(dst, protoMagic...)
	dst = append(dst, h.role)
	dst = binary.AppendUvarint(dst, uint64(len(h.token)))
	dst = append(dst, h.token...)
	dst = binary.AppendUvarint(dst, uint64(len(h.name)))
	dst = append(dst, h.name...)
	dst = binary.AppendUvarint(dst, h.epoch)
	return binary.AppendUvarint(dst, h.hint)
}

// writeReject sends a rejection reply carrying the server's fencing
// epoch and an optional redirect to the current primary. The connection
// is expected to be closed right after.
func writeReject(w io.Writer, epoch uint64, err error, redirect string) {
	msg := err.Error()
	if len(msg) > maxErrMsg {
		msg = msg[:maxErrMsg]
	}
	if len(redirect) > maxHandshakeName {
		redirect = redirect[:maxHandshakeName]
	}
	buf := append([]byte(replyErr), binary.AppendUvarint(nil, epoch)...)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	buf = binary.AppendUvarint(buf, uint64(len(redirect)))
	buf = append(buf, redirect...)
	w.Write(buf)
}

// appendOK encodes the accept reply header; role-specific payload
// follows.
func appendOK(dst []byte, epoch uint64) []byte {
	dst = append(dst, replyOK...)
	return binary.AppendUvarint(dst, epoch)
}

// readReply consumes a server reply header, returning the server's
// fencing epoch and nil when the server accepted (payload follows on
// br), or a *RejectedError when it did not.
func readReply(br *bufio.Reader) (uint64, error) {
	var tag [len(replyOK)]byte
	if _, err := io.ReadFull(br, tag[:]); err != nil {
		return 0, fmt.Errorf("server: reading reply: %w", err)
	}
	switch string(tag[:]) {
	case replyOK:
		epoch, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("server: reply epoch: %w", err)
		}
		return epoch, nil
	case replyErr:
		epoch, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: unreadable rejection", ErrRejected)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxErrMsg {
			return epoch, fmt.Errorf("%w: unreadable rejection", ErrRejected)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(br, msg); err != nil {
			return epoch, fmt.Errorf("%w: unreadable rejection", ErrRejected)
		}
		redir, err := readShortString(br)
		if err != nil {
			return epoch, fmt.Errorf("%w: unreadable rejection", ErrRejected)
		}
		return epoch, &RejectedError{Msg: string(msg), Epoch: epoch, Redirect: redir}
	default:
		return 0, fmt.Errorf("server: bad reply tag %q", tag[:])
	}
}

// appendSchema serializes a schema so subscribers need no prior
// knowledge of the query's output shape.
func appendSchema(dst []byte, s *stream.Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Name())))
	dst = append(dst, s.Name()...)
	dst = binary.AppendUvarint(dst, uint64(s.Arity()))
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		dst = binary.AppendUvarint(dst, uint64(len(a.Name)))
		dst = append(dst, a.Name...)
		dst = append(dst, byte(a.Kind))
	}
	return dst
}

// readSchema parses a serialized schema.
func readSchema(br *bufio.Reader) (*stream.Schema, error) {
	name, err := readShortString(br)
	if err != nil {
		return nil, fmt.Errorf("server: schema name: %w", err)
	}
	arity, err := binary.ReadUvarint(br)
	if err != nil || arity > maxHandshakeName {
		return nil, fmt.Errorf("server: schema arity unreadable")
	}
	attrs := make([]stream.Attribute, arity)
	for i := range attrs {
		if attrs[i].Name, err = readShortString(br); err != nil {
			return nil, fmt.Errorf("server: schema attr: %w", err)
		}
		k, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("server: schema attr kind: %w", err)
		}
		attrs[i].Kind = stream.Kind(k)
	}
	return stream.NewSchema(name, attrs...)
}

func readShortString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxHandshakeName {
		return "", fmt.Errorf("length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
