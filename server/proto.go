// Package server is the network serving front-end for the punctuated
// runtime: producers push wire frames over TCP or unix sockets and
// subscribers receive the query's results AND its punctuations, so
// downstream consumers can purge their own state exactly as the paper's
// operators do (punctuations are first-class on the wire, not an
// engine-internal signal).
//
// The HA contract mirrors the engine's crash model: the server takes
// periodic atomic checkpoints (engine snapshot plus the retained
// per-query delivery rings, one file, CRC-sealed), acks producers only
// with durable offsets, and stamps every subscriber delivery with a
// checkpoint-stable sequence number. After a kill -9 the server restarts
// from the latest checkpoint, producers replay their unacked suffix
// (duplicates discarded by offset), subscribers resume at their last
// seen sequence (duplicates discarded by seq), and the observed stream
// is element-for-element identical to an uninterrupted run.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"punctsafe/stream"
)

// Wire protocol, all integers uvarint unless noted.
//
//	client hello:  "PSRV1" role(1: 'P'|'S') nameLen name resumeHint
//	server ok:     "PSOK1" payload      (producer: resumeOffset;
//	                                     subscriber: resumeSeq schema)
//	server reject: "PSER1" msgLen msg
//
//	producer data (client→server): startOffset, then raw engine wire
//	frames starting at exactly that offset; server→producer traffic is a
//	stream of uvarint durable-offset acks, one per checkpoint.
//
//	subscriber data (server→client): per delivery
//	  seq(≥1) payloadLen payload      payload = stream.Codec encoding
//	and a single seq=0 as the clean end-of-stream marker.
const (
	protoMagic  = "PSRV1"
	replyOK     = "PSOK1"
	replyErr    = "PSER1"
	roleProduce = 'P'
	roleSub     = 'S'

	// maxHandshakeName bounds the stream/query name so a malformed
	// hello cannot demand an absurd allocation.
	maxHandshakeName = 4096
	// maxErrMsg bounds a rejection message on the client side.
	maxErrMsg = 4096
)

// Typed protocol errors. Server-side rejections travel as text; the
// client wraps them in ErrRejected.
var (
	// ErrBadHandshake classifies malformed hello bytes (bad magic, bad
	// role, oversized or truncated name). Connections failing the
	// handshake are rejected and closed, never serviced.
	ErrBadHandshake = errors.New("server: malformed handshake")
	// ErrUnknownQuery rejects a subscriber naming no registered query.
	ErrUnknownQuery = errors.New("server: unknown query")
	// ErrSourceBusy rejects a producer for a source that already has an
	// active connection (offsets are per-source; two writers would
	// interleave unrecoverably).
	ErrSourceBusy = errors.New("server: source busy")
	// ErrResumeExpired rejects a subscriber resuming below the retention
	// floor: deliveries between its last seen sequence and the oldest
	// retained entry are gone, so exactly-once resumption is impossible.
	ErrResumeExpired = errors.New("server: resume window expired")
	// ErrBadResume rejects a producer whose announced start offset is
	// ahead of the server's resume point (bytes in between would be
	// unseen) or behind its own replayable window.
	ErrBadResume = errors.New("server: bad resume offset")
	// ErrRejected wraps a server rejection message on the client side.
	ErrRejected = errors.New("server: rejected")
	// ErrServerClosed is returned by client calls after a clean
	// end-of-stream or explicit Close.
	ErrServerClosed = errors.New("server: closed")
)

// hello is a parsed client handshake.
type hello struct {
	role byte
	name string
	hint uint64 // producer: unused; subscriber: last delivered seq
}

// readHello parses a client handshake, classifying every malformation
// as ErrBadHandshake. It reads a bounded number of bytes, so a hostile
// or corrupt peer can make it fail but never hang on allocation or
// over-read past the handshake.
func readHello(br *bufio.Reader) (hello, error) {
	var h hello
	var magic [len(protoMagic) + 1]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return h, fmt.Errorf("%w: short hello: %v", ErrBadHandshake, err)
	}
	if string(magic[:len(protoMagic)]) != protoMagic {
		return h, fmt.Errorf("%w: bad magic %q", ErrBadHandshake, magic[:len(protoMagic)])
	}
	h.role = magic[len(protoMagic)]
	if h.role != roleProduce && h.role != roleSub {
		return h, fmt.Errorf("%w: bad role %q", ErrBadHandshake, h.role)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("%w: name length: %v", ErrBadHandshake, err)
	}
	if n == 0 || n > maxHandshakeName {
		return h, fmt.Errorf("%w: name length %d out of range", ErrBadHandshake, n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return h, fmt.Errorf("%w: short name: %v", ErrBadHandshake, err)
	}
	h.name = string(name)
	if h.hint, err = binary.ReadUvarint(br); err != nil {
		return h, fmt.Errorf("%w: resume hint: %v", ErrBadHandshake, err)
	}
	return h, nil
}

// appendHello encodes a client handshake.
func appendHello(dst []byte, role byte, name string, hint uint64) []byte {
	dst = append(dst, protoMagic...)
	dst = append(dst, role)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	return binary.AppendUvarint(dst, hint)
}

// writeReject sends a rejection reply. The connection is expected to be
// closed right after.
func writeReject(w io.Writer, err error) {
	msg := err.Error()
	if len(msg) > maxErrMsg {
		msg = msg[:maxErrMsg]
	}
	buf := append([]byte(replyErr), binary.AppendUvarint(nil, uint64(len(msg)))...)
	buf = append(buf, msg...)
	w.Write(buf)
}

// readReply consumes a server reply header, returning nil when the
// server accepted (payload follows on br) and ErrRejected with the
// server's message when it did not.
func readReply(br *bufio.Reader) error {
	var tag [len(replyOK)]byte
	if _, err := io.ReadFull(br, tag[:]); err != nil {
		return fmt.Errorf("server: reading reply: %w", err)
	}
	switch string(tag[:]) {
	case replyOK:
		return nil
	case replyErr:
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxErrMsg {
			return fmt.Errorf("%w: unreadable rejection", ErrRejected)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(br, msg); err != nil {
			return fmt.Errorf("%w: unreadable rejection", ErrRejected)
		}
		return fmt.Errorf("%w: %s", ErrRejected, msg)
	default:
		return fmt.Errorf("server: bad reply tag %q", tag[:])
	}
}

// appendSchema serializes a schema so subscribers need no prior
// knowledge of the query's output shape.
func appendSchema(dst []byte, s *stream.Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Name())))
	dst = append(dst, s.Name()...)
	dst = binary.AppendUvarint(dst, uint64(s.Arity()))
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		dst = binary.AppendUvarint(dst, uint64(len(a.Name)))
		dst = append(dst, a.Name...)
		dst = append(dst, byte(a.Kind))
	}
	return dst
}

// readSchema parses a serialized schema.
func readSchema(br *bufio.Reader) (*stream.Schema, error) {
	name, err := readShortString(br)
	if err != nil {
		return nil, fmt.Errorf("server: schema name: %w", err)
	}
	arity, err := binary.ReadUvarint(br)
	if err != nil || arity > maxHandshakeName {
		return nil, fmt.Errorf("server: schema arity unreadable")
	}
	attrs := make([]stream.Attribute, arity)
	for i := range attrs {
		if attrs[i].Name, err = readShortString(br); err != nil {
			return nil, fmt.Errorf("server: schema attr: %w", err)
		}
		k, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("server: schema attr kind: %w", err)
		}
		attrs[i].Kind = stream.Kind(k)
	}
	return stream.NewSchema(name, attrs...)
}

func readShortString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxHandshakeName {
		return "", fmt.Errorf("length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
