package server_test

// BenchmarkServe measures sustained serving throughput over a real unix
// socket: P producer connections pushing the auction feed through the
// wire protocol while S subscribers drain the delivery stream, with
// periodic background checkpoints enabled so producer acks and replay
// buffer trimming run at their production cadence. One op = every
// producer sending the full feed and the server ingesting all of it;
// the elements/op metric lets scripts/bench.sh derive frames per
// second for the BENCH_serving.json trajectory.

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"punctsafe/engine"
	"punctsafe/server"
	"punctsafe/stream"
	"punctsafe/workload"
)

// buildAuctionRelaxed registers the auction query without promise
// enforcement: the bench replays the same closed feed every iteration,
// which re-opens item ids that earlier rounds punctuated closed.
func buildAuctionRelaxed(d *engine.DSMS) error {
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	_, err := d.Register(testQuery, workload.AuctionQuery(), engine.Options{})
	return err
}

func BenchmarkServe(b *testing.B) {
	for _, tc := range []struct{ producers, subs int }{
		{1, 1},
		{2, 1},
		{2, 4},
	} {
		b.Run(fmt.Sprintf("p%d_s%d", tc.producers, tc.subs), func(b *testing.B) {
			benchServe(b, tc.producers, tc.subs)
		})
	}
}

func benchServe(b *testing.B, producers, subs int) {
	dir := b.TempDir()
	sock := filepath.Join(dir, "bench.sock")
	os.Remove(sock)
	l, err := net.Listen("unix", sock)
	if err != nil {
		b.Fatal(err)
	}
	item, bid := workload.AuctionSchemas()
	schemas := []*stream.Schema{item, bid}
	srv, err := server.New(server.Config{
		Listener:        l,
		Build:           buildAuctionRelaxed,
		Schemas:         schemas,
		CheckpointPath:  filepath.Join(dir, "bench.ckpt"),
		CheckpointEvery: 20 * time.Millisecond,
		QueueLimit:      1 << 14,
		Retain:          1 << 14,
		Slow:            server.SlowBlock,
	})
	if err != nil {
		b.Fatal(err)
	}

	dial := func() *server.Dialer {
		return &server.Dialer{Addr: "unix://" + sock, Backoff: 2 * time.Millisecond}
	}
	var drained []<-chan int
	for i := 0; i < subs; i++ {
		sub, err := dial().Subscribe(testQuery)
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan int, 1)
		drained = append(drained, done)
		go func() {
			n := 0
			for {
				if _, err := sub.Next(); err != nil {
					done <- n
					return
				}
				n++
			}
		}()
	}
	feed := auctionFeed()
	names := make([]string, producers)
	prods := make([]*server.Producer, producers)
	for i := range prods {
		names[i] = fmt.Sprintf("src%d", i)
		p, err := dial().Producer(names[i], schemas...)
		if err != nil {
			b.Fatal(err)
		}
		prods[i] = p
		defer p.Close()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range prods {
			for _, it := range feed {
				if err := p.Send(it.Stream, it.Elem); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		// One op ends when the server has ingested every producer's
		// send, i.e. the resume offsets catch up to the wire bytes
		// written (commit happens at network-quiet boundaries).
		for pi, p := range prods {
			for srv.Runtime().ResumeOffset(names[pi]) != p.Sent() {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(producers*len(feed)), "elements/op")
	for _, p := range prods {
		p.Close()
	}
	if err := srv.Shutdown(); err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, done := range drained {
		total += <-done
	}
	if total == 0 {
		b.Fatal("no subscriber received any delivery; the bench measured nothing")
	}
}
