package server_test

// BenchmarkFailoverRTO measures recovery time objective: the wall-clock
// span from killing the primary to the first post-failover delivery
// reaching an already-connected subscriber, covering standby promotion
// (25ms silence timeout), client rotation, producer replay, and the
// engine catching up. ns/op IS the RTO; scripts/bench.sh records it in
// the BENCH_serving.json trajectory.

import (
	"testing"
	"time"

	"punctsafe/workload"
)

func BenchmarkFailoverRTO(b *testing.B) {
	feed := auctionFeed()
	half := len(feed) / 2
	preKill := len(referenceDeliveries(b, feed[:half]))
	if preKill == 0 {
		b.Fatal("half feed yields no deliveries")
	}
	item, bid := workload.AuctionSchemas()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		p, s := nodePaths(dir, "p"), nodePaths(dir, "s")
		startPrimaryNode(b, p)
		startStandbyNode(b, s, p, 25*time.Millisecond, nil)
		waitSynced(b, s, "feed", 0)

		prod, err := haDialer(p, s).Producer("feed", item, bid)
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range feed[:half] {
			if err := prod.Send(it.Stream, it.Elem); err != nil {
				b.Fatal(err)
			}
		}
		waitIngested(b, p.srv, prod, "feed")
		ackAll(b, p.srv, prod)
		waitSynced(b, s, "feed", prod.Sent())

		// The subscriber is attached and fully caught up before the kill,
		// so the next delivery it sees is strictly post-failover.
		sub, err := haDialer(p, s).Subscribe(testQuery)
		if err != nil {
			b.Fatal(err)
		}
		for n := 0; n < preKill; n++ {
			if _, err := sub.Next(); err != nil {
				b.Fatal(err)
			}
		}

		b.StartTimer()
		p.srv.Kill()
		for _, it := range feed[half:] {
			if err := prod.Send(it.Stream, it.Elem); err != nil {
				b.Fatal(err)
			}
		}
		if err := prod.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := sub.Next(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()

		prod.Close()
		sub.Close()
		s.srv.Kill()
		b.StartTimer()
	}
}
