package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"punctsafe/engine"
	"punctsafe/stream"
)

// Dialer connects producers and subscribers to a punctserve server,
// with RetryReader-style capped jittered exponential backoff on every
// (re)connection attempt. The zero value needs only Addr.
type Dialer struct {
	// Addr is "host:port", "tcp://host:port", or "unix:///path".
	Addr string
	// Dial overrides how a raw connection is made (chaos injection,
	// in-memory pipes). When set, Addr is ignored.
	Dial func() (net.Conn, error)
	// MaxRetries bounds consecutive failed connection attempts before a
	// client call gives up (<= 0 selects the default of 4; a success
	// resets the count).
	MaxRetries int
	// Backoff is the initial delay between attempts (default 10ms),
	// doubling each failure up to MaxBackoff (default 1s), with ±50%
	// jitter.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Context, when set, aborts in-flight backoff sleeps.
	Context context.Context
	// Sleep and Rand are test seams (real sleep and math/rand default).
	Sleep func(time.Duration)
	Rand  func(n int64) int64
}

func (d *Dialer) rawDial() (net.Conn, error) {
	if d.Dial != nil {
		return d.Dial()
	}
	network, addr := "tcp", d.Addr
	switch {
	case strings.HasPrefix(addr, "tcp://"):
		addr = strings.TrimPrefix(addr, "tcp://")
	case strings.HasPrefix(addr, "unix://"):
		network, addr = "unix", strings.TrimPrefix(addr, "unix://")
	}
	return net.Dial(network, addr)
}

func (d *Dialer) maxRetries() int {
	if d.MaxRetries > 0 {
		return d.MaxRetries
	}
	return 4
}

func (d *Dialer) backoffStart() time.Duration {
	if d.Backoff > 0 {
		return d.Backoff
	}
	return 10 * time.Millisecond
}

func (d *Dialer) backoffMax() time.Duration {
	if d.MaxBackoff > 0 {
		return d.MaxBackoff
	}
	return time.Second
}

func (d *Dialer) sleep(t time.Duration) error {
	if d.Context != nil {
		if err := d.Context.Err(); err != nil {
			return err
		}
	}
	if d.Sleep != nil {
		d.Sleep(t)
	} else if d.Context != nil {
		select {
		case <-d.Context.Done():
			return d.Context.Err()
		case <-time.After(t):
		}
	} else {
		time.Sleep(t)
	}
	if d.Context != nil {
		return d.Context.Err()
	}
	return nil
}

// jitter spreads d uniformly over [d/2, 3d/2) so reconnect storms from
// many clients decorrelate.
func (d *Dialer) jitter(t time.Duration) time.Duration {
	if t <= 0 {
		return t
	}
	r := d.Rand
	if r == nil {
		r = rand.Int63n
	}
	return t/2 + time.Duration(r(int64(t)))
}

// connect dials and runs handshake until it succeeds or retries are
// exhausted. A server rejection (ErrRejected) is terminal, not retried:
// the server answered, it just said no.
func (d *Dialer) connect(handshake func(net.Conn, *bufio.Reader) error) (net.Conn, *bufio.Reader, error) {
	backoff := d.backoffStart()
	var lastErr error
	for attempt := 0; attempt <= d.maxRetries(); attempt++ {
		if attempt > 0 {
			if err := d.sleep(d.jitter(backoff)); err != nil {
				return nil, nil, err
			}
			if backoff *= 2; backoff > d.backoffMax() {
				backoff = d.backoffMax()
			}
		}
		c, err := d.rawDial()
		if err != nil {
			lastErr = err
			continue
		}
		br := bufio.NewReader(c)
		if err := handshake(c, br); err != nil {
			c.Close()
			if isRejection(err) {
				return nil, nil, err
			}
			lastErr = err
			continue
		}
		return c, br, nil
	}
	return nil, nil, fmt.Errorf("server: connect: retries exhausted: %w", lastErr)
}

// isRejection classifies handshake errors that retrying cannot cure.
// ErrSourceBusy is deliberately NOT terminal: after an abrupt
// disconnect the server may briefly still hold the dead connection's
// producer registration, and the very next attempt succeeds once the
// stale handler notices its conn died.
func isRejection(err error) bool {
	for _, terminal := range []error{ErrBadHandshake, ErrBadResume, ErrResumeExpired, ErrUnknownQuery} {
		if errorsIs(err, terminal) {
			return true
		}
	}
	return false
}

// errorsIs matches both wrapped sentinels and server-transported
// rejection text (a rejection crosses the wire as a message, so the
// original sentinel identity is gone — substring-match it back).
func errorsIs(err, target error) bool {
	return err != nil && strings.Contains(err.Error(), target.Error())
}

// Producer is a reconnecting client feeding one named source. Sends are
// encoded into an in-memory replay buffer keyed by wire offset and
// written through; on reconnect the unacknowledged suffix is replayed
// from the server's resume offset, so a crash-failover costs no data.
// The buffer is trimmed by durable acks (one per server checkpoint);
// its high-water mark is therefore bounded by the checkpoint interval.
type Producer struct {
	d      *Dialer
	source string

	mu    sync.Mutex
	ww    *engine.WireWriter
	buf   []byte // encoded frames [base, base+len(buf))
	base  int64  // wire offset of buf[0]
	acked int64  // durable ack floor (-1 until the first ack)
	conn  net.Conn
	bw    *bufio.Writer
	gen   int // connection generation, fences stale ack readers
	err   error

	// ReplayFromAck, when true, replays from the durable ack floor on
	// every reconnect instead of the server's resume offset — maximal
	// duplication, for exercising the server's dedup path in tests.
	ReplayFromAck bool
}

// Producer connects a producer for the named source. The schemas must
// cover every stream it will send.
func (d *Dialer) Producer(source string, schemas ...*stream.Schema) (*Producer, error) {
	p := &Producer{d: d, source: source, acked: -1}
	p.ww = engine.NewWireWriter(producerSink{p}, schemas...)
	if err := p.reconnectLocked(); err != nil {
		return nil, err
	}
	return p, nil
}

// producerSink routes WireWriter output into the replay buffer.
type producerSink struct{ p *Producer }

func (s producerSink) Write(b []byte) (int, error) {
	s.p.buf = append(s.p.buf, b...)
	return len(b), nil
}

// reconnectLocked (callers hold p.mu or are the constructor) dials,
// handshakes, and replays the needed suffix of the buffer.
func (p *Producer) reconnectLocked() error {
	gen := p.gen + 1
	conn, br, err := p.d.connect(func(c net.Conn, br *bufio.Reader) error {
		if _, err := c.Write(appendHello(nil, roleProduce, p.source, 0)); err != nil {
			return err
		}
		if err := readReply(br); err != nil {
			return err
		}
		resume, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("server: resume offset: %w", err)
		}
		start := int64(resume)
		if p.ReplayFromAck && p.acked >= 0 && p.acked < start {
			start = p.acked
		}
		if start < p.base {
			return fmt.Errorf("%w: server resumes at %d, buffer trimmed to %d", ErrBadResume, start, p.base)
		}
		if start > p.base+int64(len(p.buf)) {
			return fmt.Errorf("%w: server resumes at %d beyond sent %d (another producer on source %q?)",
				ErrBadResume, start, p.base+int64(len(p.buf)), p.source)
		}
		preamble := binary.AppendUvarint(nil, uint64(start))
		if _, err := c.Write(preamble); err != nil {
			return err
		}
		if replay := p.buf[start-p.base:]; len(replay) > 0 {
			if _, err := c.Write(replay); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	p.gen = gen
	p.conn = conn
	p.bw = bufio.NewWriter(conn)
	go p.readAcks(conn, br, gen)
	return nil
}

// readAcks trims the replay buffer as checkpoints make offsets durable.
// It doubles as the liveness probe: when its read fails the connection
// is dead, and marking it so lets the next Send or Flush reconnect and
// replay even if the producer was idle when the server went down.
func (p *Producer) readAcks(conn net.Conn, br *bufio.Reader, gen int) {
	for {
		off, err := binary.ReadUvarint(br)
		if err != nil {
			p.mu.Lock()
			if p.gen == gen && p.conn == conn {
				p.conn.Close()
				p.conn = nil
			}
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		if p.gen != gen {
			p.mu.Unlock()
			return
		}
		if ack := int64(off); ack > p.acked {
			p.acked = ack
			if trim := ack - p.base; trim > 0 && trim <= int64(len(p.buf)) {
				p.buf = append(p.buf[:0], p.buf[trim:]...)
				p.base = ack
			}
		}
		p.mu.Unlock()
	}
}

// Send encodes one element for the named stream and writes it through,
// reconnecting (with backoff) on a dead connection. The write is
// buffered; Flush or Close forces it out.
func (p *Producer) Send(streamName string, e stream.Element) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	pre := len(p.buf)
	if err := p.ww.Write(streamName, e); err != nil {
		return err // encoding error: nothing appended, nothing sent
	}
	frame := p.buf[pre:]
	for {
		if p.conn == nil {
			if err := p.reconnectLocked(); err != nil {
				p.err = err
				return err
			}
			// reconnectLocked replayed the whole unacked suffix,
			// including the frame just appended.
			return nil
		}
		if _, err := p.bw.Write(frame); err == nil {
			return nil
		}
		p.conn.Close()
		p.conn = nil
	}
}

// Flush forces buffered frames to the wire, reconnecting if needed.
func (p *Producer) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Producer) flushLocked() error {
	if p.err != nil {
		return p.err
	}
	if p.conn != nil {
		if err := p.bw.Flush(); err == nil {
			return nil
		}
		p.conn.Close()
		p.conn = nil
	}
	// Reconnect replays the unacked suffix directly on the conn, which
	// subsumes the flush.
	if err := p.reconnectLocked(); err != nil {
		p.err = err
		return err
	}
	return nil
}

// Close flushes and closes the connection. The producer cannot be
// reused after Close.
func (p *Producer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.flushLocked()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.gen++ // fence the ack reader
	if p.err == nil {
		p.err = ErrServerClosed
	}
	return err
}

// Acked returns the durable ack floor (-1 before the first ack).
func (p *Producer) Acked() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked
}

// Buffered returns the replay buffer size in bytes (bounded by the
// server's checkpoint interval).
func (p *Producer) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// Sent returns the total wire offset encoded so far — when the server's
// committed offset for this source reaches it, every Send has been
// ingested.
func (p *Producer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + int64(len(p.buf))
}

// Delivery is one subscriber-received output: a result tuple or a
// punctuation, with its server-assigned delivery sequence number.
type Delivery struct {
	Seq  uint64
	Elem stream.Element
}

// Subscriber is a reconnecting client consuming one query's delivery
// stream exactly once: it resumes at its last delivered sequence and
// discards replayed duplicates, so Next yields each delivery exactly
// once in order even across server crashes.
type Subscriber struct {
	d     *Dialer
	query string

	conn   net.Conn
	br     *bufio.Reader
	last   uint64
	schema *stream.Schema
	codec  *stream.Codec
	ended  bool
	closed bool
	mu     sync.Mutex // guards conn/closed against concurrent Close
}

// Subscribe connects a subscriber to the named query's delivery stream
// from the beginning.
func (d *Dialer) Subscribe(query string) (*Subscriber, error) {
	s := &Subscriber{d: d, query: query}
	if err := s.reconnect(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Subscriber) reconnect() error {
	conn, br, err := s.d.connect(func(c net.Conn, br *bufio.Reader) error {
		if _, err := c.Write(appendHello(nil, roleSub, s.query, s.last)); err != nil {
			return err
		}
		if err := readReply(br); err != nil {
			return err
		}
		if _, err := binary.ReadUvarint(br); err != nil { // resume echo
			return fmt.Errorf("server: resume echo: %w", err)
		}
		schema, err := readSchema(br)
		if err != nil {
			return err
		}
		if s.schema != nil && s.schema.Name() != schema.Name() {
			return fmt.Errorf("server: schema changed across reconnect: %s -> %s", s.schema.Name(), schema.Name())
		}
		s.schema = schema
		return nil
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return ErrServerClosed
	}
	s.conn, s.br = conn, br
	s.mu.Unlock()
	s.codec = stream.NewCodec(s.schema)
	return nil
}

// Schema returns the query's output schema (known after Subscribe).
func (s *Subscriber) Schema() *stream.Schema { return s.schema }

// Last returns the sequence number of the last delivery Next returned.
func (s *Subscriber) Last() uint64 { return s.last }

// Next returns the next delivery, blocking until one arrives. It
// reconnects and resumes transparently on connection failure,
// suppresses replayed duplicates, and returns io.EOF after the server's
// clean end-of-stream marker.
func (s *Subscriber) Next() (Delivery, error) {
	for {
		if s.ended {
			return Delivery{}, io.EOF
		}
		s.mu.Lock()
		closed, conn := s.closed, s.conn
		s.mu.Unlock()
		if closed {
			return Delivery{}, ErrServerClosed
		}
		if conn == nil {
			if err := s.reconnect(); err != nil {
				return Delivery{}, err
			}
			continue
		}
		seq, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.dropConn()
			continue
		}
		if seq == 0 {
			s.ended = true
			s.mu.Lock()
			s.conn.Close()
			s.conn = nil
			s.mu.Unlock()
			return Delivery{}, io.EOF
		}
		payload, err := readLenBytes(s.br)
		if err != nil {
			s.dropConn()
			continue
		}
		elem, rest, err := s.codec.Decode(payload)
		if err != nil || len(rest) != 0 {
			s.dropConn() // torn mid-frame write; resume re-fetches it
			continue
		}
		if seq <= s.last {
			continue // replayed duplicate
		}
		s.last = seq
		return Delivery{Seq: seq, Elem: elem}, nil
	}
}

func (s *Subscriber) dropConn() {
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.mu.Unlock()
}

// Collect drains the stream to its end marker, returning every
// remaining delivery. Useful with a server known to be shutting down.
func (s *Subscriber) Collect() ([]Delivery, error) {
	var out []Delivery
	for {
		d, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
}

// Close severs the subscription.
func (s *Subscriber) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	return nil
}
