package server

import (
	"bufio"
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"punctsafe/engine"
	"punctsafe/stream"
)

// Dialer connects producers and subscribers to a punctserve server,
// with RetryReader-style capped jittered exponential backoff on every
// (re)connection attempt. The zero value needs only Addr.
//
// For a replicated deployment list every candidate in Addrs: clients
// rotate through them on connection failure, follow PSER1 redirects to
// the current primary, and track the highest fencing epoch they have
// seen — a server at a lower epoch (a revived old primary) is treated
// as failed, never trusted with data.
type Dialer struct {
	// Addr is "host:port", "tcp://host:port", or "unix:///path".
	Addr string
	// Addrs lists failover candidates (same syntax). Addr, when also
	// set, is tried first.
	Addrs []string
	// Dial overrides how a raw connection is made (chaos injection,
	// in-memory pipes). When set, Addr/Addrs rotation is bypassed.
	Dial func() (net.Conn, error)
	// DialAddr overrides per-address dialing while keeping the
	// rotation/redirect logic (multi-server chaos injection).
	DialAddr func(addr string) (net.Conn, error)
	// TLS, when set, wraps every dialed connection in a TLS client.
	TLS *tls.Config
	// AuthToken is carried in every handshake; must match the server's
	// configured token.
	AuthToken string
	// MinEpoch seeds the session's fencing epoch: servers replying with
	// a lower epoch are rejected. Useful when the caller already knows
	// a promotion happened.
	MinEpoch uint64
	// MaxRetries bounds consecutive failed connection attempts before a
	// client call gives up (<= 0 selects the default of 4; a success
	// resets the count).
	MaxRetries int
	// Backoff is the initial delay between attempts (default 10ms),
	// doubling each failure up to MaxBackoff (default 1s), with ±50%
	// jitter. A successful session resets the progression.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Context, when set, aborts in-flight backoff sleeps.
	Context context.Context
	// Sleep and Rand are test seams (real sleep and math/rand default).
	Sleep func(time.Duration)
	Rand  func(n int64) int64
}

// dialSession is one client's long-lived connection state: address
// rotation position, a pending redirect, the highest fencing epoch
// seen, and the backoff progression — which persists across connect
// calls but resets after every successful handshake, so a long-lived
// client that reconnects after a quiet hour starts from Backoff again
// instead of the inflated tail of its last outage.
type dialSession struct {
	addrs    []string
	idx      int
	redirect string
	epoch    uint64
	backoff  time.Duration
}

func (d *Dialer) newSession() *dialSession {
	s := &dialSession{epoch: d.MinEpoch}
	if d.Addr != "" {
		s.addrs = append(s.addrs, d.Addr)
	}
	for _, a := range d.Addrs {
		if a != d.Addr {
			s.addrs = append(s.addrs, a)
		}
	}
	return s
}

// nextAddr picks the dial target: a one-shot redirect if the server
// named one, the rotation position otherwise.
func (s *dialSession) nextAddr() string {
	if s.redirect != "" {
		a := s.redirect
		s.redirect = ""
		return a
	}
	if len(s.addrs) == 0 {
		return ""
	}
	return s.addrs[s.idx%len(s.addrs)]
}

func (s *dialSession) rotate() {
	if len(s.addrs) > 1 {
		s.idx++
	}
}

func (d *Dialer) dialOne(addr string) (net.Conn, error) {
	var c net.Conn
	var err error
	switch {
	case d.Dial != nil:
		c, err = d.Dial()
	case d.DialAddr != nil:
		c, err = d.DialAddr(addr)
	default:
		network := "tcp"
		switch {
		case strings.HasPrefix(addr, "tcp://"):
			addr = strings.TrimPrefix(addr, "tcp://")
		case strings.HasPrefix(addr, "unix://"):
			network, addr = "unix", strings.TrimPrefix(addr, "unix://")
		}
		c, err = net.Dial(network, addr)
	}
	if err != nil {
		return nil, err
	}
	if d.TLS != nil {
		c = tls.Client(c, d.TLS)
	}
	return c, nil
}

func (d *Dialer) maxRetries() int {
	if d.MaxRetries > 0 {
		return d.MaxRetries
	}
	return 4
}

func (d *Dialer) backoffStart() time.Duration {
	if d.Backoff > 0 {
		return d.Backoff
	}
	return 10 * time.Millisecond
}

func (d *Dialer) backoffMax() time.Duration {
	if d.MaxBackoff > 0 {
		return d.MaxBackoff
	}
	return time.Second
}

func (d *Dialer) sleep(t time.Duration) error {
	if d.Context != nil {
		if err := d.Context.Err(); err != nil {
			return err
		}
	}
	if d.Sleep != nil {
		d.Sleep(t)
	} else if d.Context != nil {
		select {
		case <-d.Context.Done():
			return d.Context.Err()
		case <-time.After(t):
		}
	} else {
		time.Sleep(t)
	}
	if d.Context != nil {
		return d.Context.Err()
	}
	return nil
}

// jitter spreads d uniformly over [d/2, 3d/2) so reconnect storms from
// many clients decorrelate.
func (d *Dialer) jitter(t time.Duration) time.Duration {
	if t <= 0 {
		return t
	}
	r := d.Rand
	if r == nil {
		r = rand.Int63n
	}
	return t/2 + time.Duration(r(int64(t)))
}

// connect dials and runs handshake until it succeeds or retries are
// exhausted, rotating across the session's addresses and following
// redirects. A terminal server rejection (bad resume, unknown query,
// unauthorized…) fails immediately: the server answered, it just said
// no. Role rejections (ErrNotPrimary, ErrFenced) are retried — the
// cluster is mid-failover and another address (or the same one,
// moments later) will serve.
func (d *Dialer) connect(sess *dialSession, handshake func(net.Conn, *bufio.Reader) error) (net.Conn, *bufio.Reader, error) {
	if sess.backoff <= 0 {
		sess.backoff = d.backoffStart()
	}
	var lastErr error
	for attempt := 0; attempt <= d.maxRetries(); attempt++ {
		if attempt > 0 {
			if err := d.sleep(d.jitter(sess.backoff)); err != nil {
				return nil, nil, err
			}
			if sess.backoff *= 2; sess.backoff > d.backoffMax() {
				sess.backoff = d.backoffMax()
			}
		}
		c, err := d.dialOne(sess.nextAddr())
		if err != nil {
			lastErr = err
			sess.rotate()
			continue
		}
		br := bufio.NewReader(c)
		if err := handshake(c, br); err != nil {
			c.Close()
			if isRejection(err) {
				return nil, nil, err
			}
			lastErr = err
			if r := redirectOf(err); r != "" {
				sess.redirect = r // next attempt goes straight there
			} else {
				sess.rotate()
			}
			continue
		}
		sess.backoff = 0 // successful session: next outage starts fresh
		return c, br, nil
	}
	return nil, nil, fmt.Errorf("server: connect: retries exhausted: %w", lastErr)
}

// checkEpoch validates and folds a server reply epoch into the
// session: a lower epoch proves a stale server (revived old primary).
func (sess *dialSession) checkEpoch(epoch uint64) error {
	if epoch < sess.epoch {
		return fmt.Errorf("%w: server at epoch %d, session has seen %d", ErrFenced, epoch, sess.epoch)
	}
	sess.epoch = epoch
	return nil
}

// isRejection classifies handshake errors that retrying cannot cure.
// ErrSourceBusy is deliberately NOT terminal: after an abrupt
// disconnect the server may briefly still hold the dead connection's
// producer registration, and the very next attempt succeeds once the
// stale handler notices its conn died. ErrNotPrimary and ErrFenced are
// likewise transient: they resolve when a standby promotes or the
// session rotates to the new primary.
func isRejection(err error) bool {
	for _, terminal := range []error{ErrBadHandshake, ErrBadResume, ErrResumeExpired, ErrUnknownQuery, ErrUnauthorized} {
		if errorsIs(err, terminal) {
			return true
		}
	}
	return false
}

// errorsIs matches both wrapped sentinels and server-transported
// rejection text (a rejection crosses the wire as a message, so the
// original sentinel identity is gone — substring-match it back).
func errorsIs(err, target error) bool {
	return err != nil && strings.Contains(err.Error(), target.Error())
}

// redirectOf extracts the redirect address of a server rejection.
func redirectOf(err error) string {
	var rej *RejectedError
	if errors.As(err, &rej) {
		return rej.Redirect
	}
	return ""
}

// Health is a server's probe reply.
type Health struct {
	// Role is "primary", "standby", or "fenced".
	Role string
	// Epoch is the server's fencing epoch.
	Epoch uint64
	// Offsets maps every ingest source to its last committed offset.
	Offsets map[string]int64
}

// Probe sends one PING control frame and returns the server's role,
// fencing epoch, and last-committed offsets. It uses the same
// rotation/backoff as data clients but does not follow redirects (the
// point is to ask THIS server how it feels).
func (d *Dialer) Probe() (Health, error) {
	var h Health
	sess := d.newSession()
	conn, br, err := d.connect(sess, func(c net.Conn, br *bufio.Reader) error {
		if _, err := c.Write(appendHello(nil, hello{role: roleProbe, token: d.AuthToken, epoch: d.MinEpoch})); err != nil {
			return err
		}
		epoch, err := readReply(br)
		if err != nil {
			return err
		}
		role, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("server: probe role: %w", err)
		}
		switch role {
		case probePrimary:
			h.Role = "primary"
		case probeStandby:
			h.Role = "standby"
		case probeFenced:
			h.Role = "fenced"
		default:
			return fmt.Errorf("server: probe: bad role byte %q", role)
		}
		h.Epoch = epoch
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxHandshakeName {
			return fmt.Errorf("server: probe: source count unreadable")
		}
		h.Offsets = make(map[string]int64, n)
		for i := uint64(0); i < n; i++ {
			src, err := readShortString(br)
			if err != nil {
				return fmt.Errorf("server: probe source: %w", err)
			}
			off, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("server: probe offset: %w", err)
			}
			h.Offsets[src] = int64(off)
		}
		return nil
	})
	if err != nil {
		return h, err
	}
	conn.Close()
	_ = br
	return h, nil
}

// Producer is a reconnecting client feeding one named source. Sends are
// encoded into an in-memory replay buffer keyed by wire offset and
// written through; on reconnect the unacknowledged suffix is replayed
// from the server's resume offset, so a crash-failover costs no data.
// The buffer is trimmed by durable acks (one per server checkpoint);
// its high-water mark is therefore bounded by the checkpoint interval.
// Across a primary→standby failover the same replay handshake runs
// against the promoted standby: offsets are identical on both sides of
// the feed, so the producer replays exactly the suffix the standby has
// not made durable.
type Producer struct {
	d      *Dialer
	source string
	sess   *dialSession

	mu    sync.Mutex
	ww    *engine.WireWriter
	buf   []byte // encoded frames [base, base+len(buf))
	base  int64  // wire offset of buf[0]
	acked int64  // durable ack floor (-1 until the first ack)
	conn  net.Conn
	bw    *bufio.Writer
	gen   int // connection generation, fences stale ack readers
	err   error

	// ReplayFromAck, when true, replays from the durable ack floor on
	// every reconnect instead of the server's resume offset — maximal
	// duplication, for exercising the server's dedup path in tests.
	ReplayFromAck bool
}

// Producer connects a producer for the named source. The schemas must
// cover every stream it will send.
func (d *Dialer) Producer(source string, schemas ...*stream.Schema) (*Producer, error) {
	p := &Producer{d: d, source: source, acked: -1, sess: d.newSession()}
	p.ww = engine.NewWireWriter(producerSink{p}, schemas...)
	if err := p.reconnectLocked(); err != nil {
		return nil, err
	}
	return p, nil
}

// producerSink routes WireWriter output into the replay buffer.
type producerSink struct{ p *Producer }

func (s producerSink) Write(b []byte) (int, error) {
	s.p.buf = append(s.p.buf, b...)
	return len(b), nil
}

// reconnectLocked (callers hold p.mu or are the constructor) dials,
// handshakes, and replays the needed suffix of the buffer.
func (p *Producer) reconnectLocked() error {
	gen := p.gen + 1
	conn, br, err := p.d.connect(p.sess, func(c net.Conn, br *bufio.Reader) error {
		if _, err := c.Write(appendHello(nil, hello{role: roleProduce, token: p.d.AuthToken, name: p.source, epoch: p.sess.epoch})); err != nil {
			return err
		}
		epoch, err := readReply(br)
		if err != nil {
			return err
		}
		if err := p.sess.checkEpoch(epoch); err != nil {
			return err
		}
		resume, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("server: resume offset: %w", err)
		}
		start := int64(resume)
		if p.ReplayFromAck && p.acked >= 0 && p.acked < start {
			start = p.acked
		}
		if start < p.base {
			return fmt.Errorf("%w: server resumes at %d, buffer trimmed to %d", ErrBadResume, start, p.base)
		}
		if start > p.base+int64(len(p.buf)) {
			return fmt.Errorf("%w: server resumes at %d beyond sent %d (another producer on source %q?)",
				ErrBadResume, start, p.base+int64(len(p.buf)), p.source)
		}
		preamble := binary.AppendUvarint(nil, uint64(start))
		if _, err := c.Write(preamble); err != nil {
			return err
		}
		if replay := p.buf[start-p.base:]; len(replay) > 0 {
			if _, err := c.Write(replay); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	p.gen = gen
	p.conn = conn
	p.bw = bufio.NewWriter(conn)
	go p.readAcks(conn, br, gen)
	return nil
}

// readAcks trims the replay buffer as checkpoints make offsets durable.
// It doubles as the liveness probe: when its read fails the connection
// is dead, and marking it so lets the next Send or Flush reconnect and
// replay even if the producer was idle when the server went down.
func (p *Producer) readAcks(conn net.Conn, br *bufio.Reader, gen int) {
	for {
		off, err := binary.ReadUvarint(br)
		if err != nil {
			p.mu.Lock()
			if p.gen == gen && p.conn == conn {
				p.conn.Close()
				p.conn = nil
			}
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		if p.gen != gen {
			p.mu.Unlock()
			return
		}
		if ack := int64(off); ack > p.acked {
			p.acked = ack
			if trim := ack - p.base; trim > 0 && trim <= int64(len(p.buf)) {
				p.buf = append(p.buf[:0], p.buf[trim:]...)
				p.base = ack
			}
		}
		p.mu.Unlock()
	}
}

// Send encodes one element for the named stream and writes it through,
// reconnecting (with backoff) on a dead connection. The write is
// buffered; Flush or Close forces it out.
func (p *Producer) Send(streamName string, e stream.Element) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	pre := len(p.buf)
	if err := p.ww.Write(streamName, e); err != nil {
		return err // encoding error: nothing appended, nothing sent
	}
	frame := p.buf[pre:]
	for {
		if p.conn == nil {
			if err := p.reconnectLocked(); err != nil {
				p.err = err
				return err
			}
			// reconnectLocked replayed the whole unacked suffix,
			// including the frame just appended.
			return nil
		}
		if _, err := p.bw.Write(frame); err == nil {
			return nil
		}
		p.conn.Close()
		p.conn = nil
	}
}

// Flush forces buffered frames to the wire, reconnecting if needed.
func (p *Producer) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Producer) flushLocked() error {
	if p.err != nil {
		return p.err
	}
	if p.conn != nil {
		if err := p.bw.Flush(); err == nil {
			return nil
		}
		p.conn.Close()
		p.conn = nil
	}
	// Reconnect replays the unacked suffix directly on the conn, which
	// subsumes the flush.
	if err := p.reconnectLocked(); err != nil {
		p.err = err
		return err
	}
	return nil
}

// Close flushes and closes the connection. The producer cannot be
// reused after Close.
func (p *Producer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.flushLocked()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.gen++ // fence the ack reader
	if p.err == nil {
		p.err = ErrServerClosed
	}
	return err
}

// Acked returns the durable ack floor (-1 before the first ack).
func (p *Producer) Acked() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked
}

// Buffered returns the replay buffer size in bytes (bounded by the
// server's checkpoint interval).
func (p *Producer) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// Sent returns the total wire offset encoded so far — when the server's
// committed offset for this source reaches it, every Send has been
// ingested.
func (p *Producer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + int64(len(p.buf))
}

// Epoch returns the highest fencing epoch this producer has seen.
func (p *Producer) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sess.epoch
}

// Delivery is one subscriber-received output: a result tuple or a
// punctuation, with its server-assigned delivery sequence number.
type Delivery struct {
	Seq  uint64
	Elem stream.Element
}

// Subscriber is a reconnecting client consuming one query's delivery
// stream exactly once: it resumes at its last delivered sequence and
// discards replayed duplicates, so Next yields each delivery exactly
// once in order even across server crashes — and across failovers,
// because the promoted standby assigns the same sequence numbers the
// primary did.
type Subscriber struct {
	d     *Dialer
	query string
	sess  *dialSession

	conn   net.Conn
	br     *bufio.Reader
	last   uint64
	schema *stream.Schema
	codec  *stream.Codec
	ended  bool
	closed bool
	mu     sync.Mutex // guards conn/closed against concurrent Close
}

// Subscribe connects a subscriber to the named query's delivery stream
// from the beginning.
func (d *Dialer) Subscribe(query string) (*Subscriber, error) {
	s := &Subscriber{d: d, query: query, sess: d.newSession()}
	if err := s.reconnect(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Subscriber) reconnect() error {
	conn, br, err := s.d.connect(s.sess, func(c net.Conn, br *bufio.Reader) error {
		if _, err := c.Write(appendHello(nil, hello{role: roleSub, token: s.d.AuthToken, name: s.query, epoch: s.sess.epoch, hint: s.last})); err != nil {
			return err
		}
		epoch, err := readReply(br)
		if err != nil {
			return err
		}
		if err := s.sess.checkEpoch(epoch); err != nil {
			return err
		}
		if _, err := binary.ReadUvarint(br); err != nil { // resume echo
			return fmt.Errorf("server: resume echo: %w", err)
		}
		schema, err := readSchema(br)
		if err != nil {
			return err
		}
		if s.schema != nil && s.schema.Name() != schema.Name() {
			return fmt.Errorf("server: schema changed across reconnect: %s -> %s", s.schema.Name(), schema.Name())
		}
		s.schema = schema
		return nil
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return ErrServerClosed
	}
	s.conn, s.br = conn, br
	s.mu.Unlock()
	s.codec = stream.NewCodec(s.schema)
	return nil
}

// Schema returns the query's output schema (known after Subscribe).
func (s *Subscriber) Schema() *stream.Schema { return s.schema }

// Last returns the sequence number of the last delivery Next returned.
func (s *Subscriber) Last() uint64 { return s.last }

// Epoch returns the highest fencing epoch this subscriber has seen.
func (s *Subscriber) Epoch() uint64 { return s.sess.epoch }

// Next returns the next delivery, blocking until one arrives. It
// reconnects and resumes transparently on connection failure,
// suppresses replayed duplicates, and returns io.EOF after the server's
// clean end-of-stream marker.
func (s *Subscriber) Next() (Delivery, error) {
	for {
		if s.ended {
			return Delivery{}, io.EOF
		}
		s.mu.Lock()
		closed, conn := s.closed, s.conn
		s.mu.Unlock()
		if closed {
			return Delivery{}, ErrServerClosed
		}
		if conn == nil {
			if err := s.reconnect(); err != nil {
				return Delivery{}, err
			}
			continue
		}
		seq, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.dropConn()
			continue
		}
		if seq == 0 {
			s.ended = true
			s.mu.Lock()
			s.conn.Close()
			s.conn = nil
			s.mu.Unlock()
			return Delivery{}, io.EOF
		}
		payload, err := readLenBytes(s.br)
		if err != nil {
			s.dropConn()
			continue
		}
		elem, rest, err := s.codec.Decode(payload)
		if err != nil || len(rest) != 0 {
			s.dropConn() // torn mid-frame write; resume re-fetches it
			continue
		}
		if seq <= s.last {
			continue // replayed duplicate
		}
		s.last = seq
		return Delivery{Seq: seq, Elem: elem}, nil
	}
}

func (s *Subscriber) dropConn() {
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.mu.Unlock()
}

// Collect drains the stream to its end marker, returning every
// remaining delivery. Useful with a server known to be shutting down.
func (s *Subscriber) Collect() ([]Delivery, error) {
	var out []Delivery
	for {
		d, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
}

// Close severs the subscription.
func (s *Subscriber) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	return nil
}
