package safety

import (
	"fmt"
	"strings"
)

// Dot renders the punctuation graph in Graphviz dot format, labeling each
// edge with the predicate and scheme that created it.
func (pg *PG) Dot() string {
	var b strings.Builder
	b.WriteString("digraph PG {\n  rankdir=LR;\n")
	for i := 0; i < pg.q.N(); i++ {
		fmt.Fprintf(&b, "  %q;\n", pg.q.Stream(i).Name())
	}
	for _, e := range pg.edges {
		toAttr := pg.q.Stream(e.To).Attr(attrOnSide(e.Pred, e.To)).Name
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
			pg.q.Stream(e.From).Name(), pg.q.Stream(e.To).Name(),
			fmt.Sprintf("%s.%s", pg.q.Stream(e.To).Name(), toAttr))
	}
	b.WriteString("}\n")
	return b.String()
}

// Dot renders the generalized punctuation graph: the plain edges plus one
// diamond-shaped generalized node per multi-attribute scheme, with its
// partner streams feeding it (Definition 8's drawing).
func (g *GPG) Dot() string {
	var b strings.Builder
	b.WriteString("digraph GPG {\n  rankdir=LR;\n")
	for i := 0; i < g.q.N(); i++ {
		fmt.Fprintf(&b, "  %q;\n", g.q.Stream(i).Name())
	}
	for _, e := range g.pg.edges {
		fmt.Fprintf(&b, "  %q -> %q;\n",
			g.q.Stream(e.From).Name(), g.q.Stream(e.To).Name())
	}
	for gi, ge := range g.gen {
		node := fmt.Sprintf("G%d", gi)
		fmt.Fprintf(&b, "  %q [shape=diamond,label=%q];\n", node, ge.Scheme.String())
		for k, a := range ge.Attrs {
			_ = k
			for _, p := range a.Partners {
				attrName := g.q.Stream(ge.Head).Attr(a.Attr).Name
				fmt.Fprintf(&b, "  %q -> %q [style=dashed,label=%q];\n",
					g.q.Stream(p).Name(), node, attrName)
			}
		}
		fmt.Fprintf(&b, "  %q -> %q [style=bold];\n", node, g.q.Stream(ge.Head).Name())
	}
	b.WriteString("}\n")
	return b.String()
}

// Dot renders the final round of the transformed punctuation graph:
// virtual nodes (boxes listing their covered streams) and the derived
// edges.
func (t *TPG) Dot() string {
	final := t.Rounds[len(t.Rounds)-1]
	var b strings.Builder
	b.WriteString("digraph TPG {\n  rankdir=LR;\n  node [shape=box];\n")
	for i, cover := range final.Nodes {
		var names []string
		for _, s := range cover {
			names = append(names, t.q.Stream(s).Name())
		}
		fmt.Fprintf(&b, "  N%d [label=%q];\n", i, strings.Join(names, ", "))
	}
	for _, e := range final.Edges {
		fmt.Fprintf(&b, "  N%d -> N%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// attrOnSide returns the predicate's attribute position on the given
// stream's side.
func attrOnSide(p interface{ Other(int) (int, int, int) }, side int) int {
	_, sideAttr, _ := p.Other(side)
	return sideAttr
}
