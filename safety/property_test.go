package safety

import (
	"fmt"
	"math/rand"
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
)

// randomInstance builds a random connected CJQ and scheme set. Streams
// have 2-4 integer attributes; the join graph is a random spanning tree
// plus a few extra edges; each stream gets 0-2 random schemes (some
// multi-attribute, some over non-join attributes so unusable schemes are
// exercised too).
func randomInstance(rng *rand.Rand) (*query.CJQ, *stream.SchemeSet) {
	n := 2 + rng.Intn(6) // 2..7 streams
	schemas := make([]*stream.Schema, n)
	for i := range schemas {
		arity := 2 + rng.Intn(3)
		attrs := make([]stream.Attribute, arity)
		for j := range attrs {
			attrs[j] = stream.Attribute{Name: fmt.Sprintf("a%d", j), Kind: stream.KindInt}
		}
		schemas[i] = stream.MustSchema(fmt.Sprintf("S%d", i), attrs...)
	}

	var preds []query.Predicate
	// Spanning tree to guarantee connectivity.
	perm := rng.Perm(n)
	for k := 1; k < n; k++ {
		u := perm[rng.Intn(k)]
		v := perm[k]
		preds = append(preds, randomPredicate(rng, schemas, u, v))
	}
	// Extra random edges.
	extra := rng.Intn(n)
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		preds = append(preds, randomPredicate(rng, schemas, u, v))
	}

	q, err := query.NewCJQ(schemas, preds)
	if err != nil {
		panic(err) // spanning tree guarantees validity
	}

	set := stream.NewSchemeSet()
	for i := 0; i < n; i++ {
		for s := rng.Intn(3); s > 0; s-- {
			arity := schemas[i].Arity()
			mask := make([]bool, arity)
			// Bias toward punctuating join attributes so safe instances occur.
			ja := q.JoinAttrs(i)
			if len(ja) > 0 && rng.Intn(4) != 0 {
				mask[ja[rng.Intn(len(ja))]] = true
			} else {
				mask[rng.Intn(arity)] = true
			}
			if rng.Intn(3) == 0 { // sometimes multi-attribute
				mask[rng.Intn(arity)] = true
			}
			set.Add(stream.MustScheme(schemas[i].Name(), mask...))
		}
	}
	return q, set
}

func randomPredicate(rng *rand.Rand, schemas []*stream.Schema, u, v int) query.Predicate {
	return query.Predicate{
		Left:      u,
		LeftAttr:  rng.Intn(schemas[u].Arity()),
		Right:     v,
		RightAttr: rng.Intn(schemas[v].Arity()),
	}
}

// TestTheorem5Property: on random instances, the polynomial-time TPG
// verdict must coincide with the naive GPG strong-connection fixpoint
// (Theorem 5), and the hypergraph expansion must agree with the GPG's
// AND-OR reachability.
func TestTheorem5Property(t *testing.T) {
	rng := rand.New(rand.NewSource(20060912)) // VLDB'06 opening day
	safeSeen, unsafeSeen := 0, 0
	for trial := 0; trial < 3000; trial++ {
		q, set := randomInstance(rng)
		gpg := BuildGPG(q, set)
		tpg := Transform(q, set)
		naive := gpg.StronglyConnected()
		fast := tpg.SingleNode()
		if naive != fast {
			t.Fatalf("trial %d: GPG strongly connected=%v but TPG single node=%v\nquery: %s\nschemes: %s\nTPG trace:\n%s",
				trial, naive, fast, q, set, tpg)
		}
		if naive {
			safeSeen++
		} else {
			unsafeSeen++
		}
	}
	if safeSeen == 0 || unsafeSeen == 0 {
		t.Fatalf("degenerate sample: safe=%d unsafe=%d — generator needs rebalancing", safeSeen, unsafeSeen)
	}
	t.Logf("checked 3000 random instances: %d safe, %d unsafe", safeSeen, unsafeSeen)
}

// TestHyperExpansionAgrees: GPG AND-OR reachability must agree with the
// exhaustive hyperedge expansion for every source stream.
func TestHyperExpansionAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		q, set := randomInstance(rng)
		gpg := BuildGPG(q, set)
		h := gpg.Hyper()
		for i := 0; i < q.N(); i++ {
			a := gpg.ReachableFrom(i)
			b := h.ReachableFrom(i)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("trial %d: reach(%d)[%d] GPG=%v hyper=%v\nquery %s schemes %s",
						trial, i, j, a[j], b[j], q, set)
				}
			}
		}
	}
}

// TestSchemeMonotonicity: adding punctuation schemes can only help —
// a safe query stays safe, and per-stream purgeability never degrades.
func TestSchemeMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 800; trial++ {
		q, set := randomInstance(rng)
		before := BuildGPG(q, set)
		grown := set.Clone()
		// Add one random scheme on a random stream.
		i := rng.Intn(q.N())
		arity := q.Stream(i).Arity()
		mask := make([]bool, arity)
		mask[rng.Intn(arity)] = true
		grown.Add(stream.MustScheme(q.Stream(i).Name(), mask...))
		after := BuildGPG(q, grown)
		for s := 0; s < q.N(); s++ {
			if before.StreamPurgeable(s) && !after.StreamPurgeable(s) {
				t.Fatalf("trial %d: stream %d purgeability lost after adding a scheme", trial, s)
			}
		}
		if Transform(q, set).SingleNode() && !Transform(q, grown).SingleNode() {
			t.Fatalf("trial %d: safety lost after adding a scheme", trial)
		}
	}
}

// TestAllJoinAttrsPunctuatedIsSafe: when every stream punctuates every
// one of its join attributes (each as its own simple scheme), every
// predicate contributes edges in both directions, so the PG is strongly
// connected whenever the join graph is connected — the query must be safe.
func TestAllJoinAttrsPunctuatedIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		q, _ := randomInstance(rng)
		set := stream.NewSchemeSet()
		for i := 0; i < q.N(); i++ {
			for _, a := range q.JoinAttrs(i) {
				mask := make([]bool, q.Stream(i).Arity())
				mask[a] = true
				set.Add(stream.MustScheme(q.Stream(i).Name(), mask...))
			}
		}
		rep, err := Check(q, set)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Safe {
			t.Fatalf("trial %d: fully punctuated query must be safe\n%s", trial, rep.Explain(q))
		}
	}
}

// TestNoSchemesIsUnsafe: with an empty scheme set no join state can ever
// be purged, so every query is unsafe.
func TestNoSchemesIsUnsafe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		q, _ := randomInstance(rng)
		rep, err := Check(q, stream.NewSchemeSet())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Safe {
			t.Fatalf("trial %d: query with no schemes must be unsafe", trial)
		}
		for i, ok := range rep.StreamPurgeable {
			if ok {
				t.Fatalf("trial %d: stream %d cannot be purgeable with no schemes", trial, i)
			}
		}
	}
}

// TestPurgePlanCoversAllStreams: every purge plan for a purgeable stream
// must cover all other streams exactly once, with sources already covered
// at the time of each step (the chained purge invariant).
func TestPurgePlanCoversAllStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 800; trial++ {
		q, set := randomInstance(rng)
		gpg := BuildGPG(q, set)
		for i := 0; i < q.N(); i++ {
			if !gpg.StreamPurgeable(i) {
				if gpg.PurgePlan(i) != nil {
					t.Fatalf("trial %d: non-purgeable stream %d must have nil plan", trial, i)
				}
				continue
			}
			plan := gpg.PurgePlan(i)
			if plan == nil {
				t.Fatalf("trial %d: purgeable stream %d must have a plan", trial, i)
			}
			covered := map[int]bool{i: true}
			for _, st := range plan.Steps {
				if covered[st.Stream] {
					t.Fatalf("trial %d: stream %d covered twice in plan for %d", trial, st.Stream, i)
				}
				for _, src := range st.Sources {
					if !covered[src] {
						t.Fatalf("trial %d: step for %d uses uncovered source %d", trial, st.Stream, src)
					}
				}
				if len(st.Sources) != len(st.Attrs) {
					t.Fatalf("trial %d: step sources/attrs mismatch: %+v", trial, st)
				}
				covered[st.Stream] = true
			}
			if len(covered) != q.N() {
				t.Fatalf("trial %d: plan for %d covers %d of %d streams", trial, i, len(covered), q.N())
			}
		}
	}
}
