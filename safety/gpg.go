package safety

import (
	"fmt"
	"strings"

	"punctsafe/internal/graph"
	"punctsafe/query"
	"punctsafe/stream"
)

// GenEdge is a generalized directed edge of the GPG (Definition 8),
// created by a punctuation scheme on stream Head with several punctuatable
// attributes. Firing the edge (making Head reachable) requires, for every
// punctuatable attribute, that at least one of that attribute's join
// partner streams is already reachable: the attribute's constants for the
// chained purge come from the joinable frontier on that partner
// (generalized chained purge strategy, §4.2).
//
// The paper draws the tail as a single generalized node covering one
// partner per attribute; when an attribute joins several streams, any one
// of them supplies the constants, so the tail is an AND of per-attribute
// OR-sets (equivalent to one Definition-8 edge per combination).
type GenEdge struct {
	Head   int
	Scheme stream.Scheme
	// Attrs[k] describes the k-th punctuatable attribute of Scheme.
	Attrs []GenEdgeAttr
}

// GenEdgeAttr is one punctuatable attribute of a generalized edge's scheme
// together with the streams that can supply its purge constants.
type GenEdgeAttr struct {
	Attr     int   // attribute position within Head's schema
	Partners []int // streams with a join predicate on Head.Attr (ascending)
}

// GPG is the generalized punctuation graph of Definition 8: the plain
// punctuation graph plus generalized edges for multi-attribute schemes.
// Reachability follows Definition 9 (fixpoint over generalized edges),
// strong connection Definition 10.
type GPG struct {
	q      *query.CJQ
	pg     *PG
	gen    []GenEdge
	useful []stream.Scheme
}

// BuildGPG constructs the generalized punctuation graph of q under the
// scheme set. A scheme is usable — and contributes an edge — only when
// every one of its punctuatable attributes is a join attribute of its
// stream within q: otherwise no finite set of its instantiations can
// cover the unconstrained attribute's infinite domain, so it cannot purge
// anything (Definition 8's precondition).
func BuildGPG(q *query.CJQ, schemes *stream.SchemeSet) *GPG {
	g := &GPG{q: q, pg: BuildPG(q, schemes)}
	seenUseful := make(map[string]bool)
	markUseful := func(s stream.Scheme) {
		key := s.String()
		if !seenUseful[key] {
			seenUseful[key] = true
			g.useful = append(g.useful, s)
		}
	}
	for _, e := range g.pg.Edges() {
		markUseful(e.Scheme)
	}
	for i := 0; i < q.N(); i++ {
		for _, s := range schemes.ForStream(q.Stream(i).Name()) {
			idx := s.PunctuatableIndexes()
			if len(idx) < 2 {
				continue // simple schemes already live in the plain PG
			}
			attrs := make([]GenEdgeAttr, 0, len(idx))
			usable := true
			for _, a := range idx {
				partners := q.JoinPartners(i, a)
				if len(partners) == 0 {
					usable = false
					break
				}
				attrs = append(attrs, GenEdgeAttr{Attr: a, Partners: partners})
			}
			if !usable {
				continue
			}
			g.gen = append(g.gen, GenEdge{Head: i, Scheme: s, Attrs: attrs})
			markUseful(s)
		}
	}
	return g
}

// Query returns the analysed query.
func (g *GPG) Query() *query.CJQ { return g.q }

// PG returns the plain punctuation graph the GPG extends.
func (g *GPG) PG() *PG { return g.pg }

// GenEdges returns the generalized edges (owned by the GPG).
func (g *GPG) GenEdges() []GenEdge { return g.gen }

// UsefulSchemes returns the schemes contributing at least one (plain or
// generalized) edge, i.e. the schemes worth processing at runtime.
func (g *GPG) UsefulSchemes() []stream.Scheme {
	return append([]stream.Scheme(nil), g.useful...)
}

// ReachableFrom computes Definition 9 reachability: seed with plain-edge
// reachability from src, then repeatedly fire generalized edges whose
// per-attribute partner sets are all covered, until a fixpoint.
func (g *GPG) ReachableFrom(src int) []bool {
	seen := g.pg.g.ReachableFrom(src)
	for changed := true; changed; {
		changed = false
		for _, e := range g.gen {
			if seen[e.Head] || !e.firable(seen) {
				continue
			}
			for v, ok := range g.pg.g.ReachableFrom(e.Head) {
				if ok {
					seen[v] = true
				}
			}
			seen[e.Head] = true
			changed = true
		}
	}
	return seen
}

func (e GenEdge) firable(seen []bool) bool {
	for _, a := range e.Attrs {
		ok := false
		for _, p := range a.Partners {
			if seen[p] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// StreamPurgeable is Theorem 3: the join state of stream i is purgeable
// iff i reaches every other node under generalized reachability.
func (g *GPG) StreamPurgeable(i int) bool {
	for _, ok := range g.ReachableFrom(i) {
		if !ok {
			return false
		}
	}
	return true
}

// StronglyConnected is Definition 10 / Corollary 2 / Theorem 4: every
// stream reaches every other. This is the reference (naive) safety check;
// Transform provides the faster equivalent (Theorem 5).
func (g *GPG) StronglyConnected() bool {
	for i := 0; i < g.q.N(); i++ {
		if !g.StreamPurgeable(i) {
			return false
		}
	}
	return true
}

// Hyper renders the GPG as a generic hypergraph over stream indices,
// expanding each AND-OR edge into its Definition-8 combinations. Intended
// for diagnostics and cross-checking against internal/graph algorithms;
// combination counts are tiny for real queries but can in principle be
// exponential, so reachability queries should use the GPG directly.
func (g *GPG) Hyper() *graph.HyperDigraph {
	h := graph.NewHyperDigraph(g.q.N())
	for u := 0; u < g.q.N(); u++ {
		for _, v := range g.pg.g.Succ(u) {
			h.AddEdge(u, v)
		}
	}
	for _, e := range g.gen {
		for _, tails := range e.combinations() {
			h.AddHyperEdge(tails, e.Head)
		}
	}
	return h
}

// combinations enumerates one partner choice per attribute.
func (e GenEdge) combinations() [][]int {
	out := [][]int{nil}
	for _, a := range e.Attrs {
		var next [][]int
		for _, prefix := range out {
			for _, p := range a.Partners {
				comb := append(append([]int(nil), prefix...), p)
				next = append(next, comb)
			}
		}
		out = next
	}
	return out
}

// PurgePlan is the witness for a purgeable stream: the order in which the
// chained purge strategy (§3.2.1, generalized in §4.2) covers the other
// streams, starting from Root. Executing the steps in order yields, for
// any tuple t of Root, a finite set of punctuations guaranteeing t joins
// nothing new — the constructive half of Theorems 1 and 3.
type PurgePlan struct {
	Root  int
	Steps []PurgeStep
}

// PurgeStep records how one stream joined the reachable set.
type PurgeStep struct {
	// Stream is the node made reachable by this step: punctuations from
	// Stream (instantiating Scheme) close the joinable frontier toward it.
	Stream int
	// Scheme is the punctuation scheme supplying those punctuations.
	Scheme stream.Scheme
	// Sources[k] is the already-covered stream from which the constants
	// for the k-th punctuatable attribute of Scheme are drawn (the
	// joinable frontier lives in that stream's join state). For a plain
	// edge there is exactly one source.
	Sources []int
	// Attrs[k] is the punctuatable attribute position (within Stream's
	// schema) matched with Sources[k].
	Attrs []int
	// SourceAttrs[k] is the attribute position on Sources[k]'s side of
	// the join predicate linking it to Attrs[k]: the purge constants for
	// the k-th punctuatable attribute are the distinct SourceAttrs[k]
	// values of the joinable frontier stored for Sources[k].
	SourceAttrs []int
}

// Describe renders the step with stream names.
func (s PurgeStep) Describe(q *query.CJQ) string {
	var parts []string
	for k := range s.Sources {
		parts = append(parts, fmt.Sprintf("%s.%s from frontier in %s",
			q.Stream(s.Stream).Name(),
			q.Stream(s.Stream).Attr(s.Attrs[k]).Name,
			q.Stream(s.Sources[k]).Name()))
	}
	return fmt.Sprintf("punctuate %s via %s (%s)",
		q.Stream(s.Stream).Name(), s.Scheme, strings.Join(parts, "; "))
}

// PurgePlan derives a purge-order witness for stream root. It returns nil
// when root is not purgeable. The plan replays the Definition 9 fixpoint,
// recording for every newly covered stream the scheme and constant
// sources used.
func (g *GPG) PurgePlan(root int) *PurgePlan {
	if !g.StreamPurgeable(root) {
		return nil
	}
	plan := &PurgePlan{Root: root}
	covered := make([]bool, g.q.N())
	covered[root] = true

	// Plain edges first, BFS order, then generalized edges to fixpoint.
	// Each expansion appends a step.
	expandPlain := func() bool {
		progressed := false
		for {
			advanced := false
			for u := 0; u < g.q.N(); u++ {
				if !covered[u] {
					continue
				}
				for _, e := range g.pg.edges {
					if e.From != u || covered[e.To] {
						continue
					}
					_, fromAttr, toAttr := attrsOf(e.Pred, e.To)
					plan.Steps = append(plan.Steps, PurgeStep{
						Stream:      e.To,
						Scheme:      e.Scheme,
						Sources:     []int{u},
						Attrs:       []int{toAttr},
						SourceAttrs: []int{fromAttr},
					})
					covered[e.To] = true
					advanced = true
					progressed = true
				}
			}
			if !advanced {
				return progressed
			}
		}
	}
	expandPlain()
	for {
		fired := false
		for _, e := range g.gen {
			if covered[e.Head] || !e.firable(covered) {
				continue
			}
			step := PurgeStep{Stream: e.Head, Scheme: e.Scheme}
			for _, a := range e.Attrs {
				src := -1
				for _, p := range a.Partners {
					if covered[p] {
						src = p
						break
					}
				}
				step.Sources = append(step.Sources, src)
				step.Attrs = append(step.Attrs, a.Attr)
				step.SourceAttrs = append(step.SourceAttrs, g.q.PartnerAttr(e.Head, a.Attr, src))
			}
			plan.Steps = append(plan.Steps, step)
			covered[e.Head] = true
			fired = true
			expandPlain()
		}
		if !fired {
			break
		}
	}
	// Deterministic order within the witness is already guaranteed by the
	// scan order; sanity-check full coverage.
	for i, ok := range covered {
		if !ok {
			panic(fmt.Sprintf("safety: purge plan for purgeable stream %d missed stream %d", root, i))
		}
	}
	return plan
}

// attrsOf resolves a predicate's attribute positions relative to side:
// it returns the other stream, the other stream's attribute, and side's
// attribute.
func attrsOf(p query.Predicate, side int) (other, otherAttr, sideAttr int) {
	other, sideAttr, otherAttr = p.Other(side)
	return other, otherAttr, sideAttr
}
