// Package safety implements the paper's core contribution: compile-time
// safety checking of continuous join queries (CJQs) under punctuation
// semantics.
//
// Given a CJQ and a punctuation scheme set ℜ, the checker decides whether
// the query admits an execution plan whose every join operator can keep
// its join states finite using only punctuations that instantiate schemes
// in ℜ. The machinery follows the paper exactly:
//
//   - PG, the punctuation graph (Definition 7), covers schemes with a
//     single punctuatable attribute. Theorem 1 / Corollary 1: a stream's
//     join state is purgeable iff the stream reaches every other node;
//     an operator is purgeable iff the PG is strongly connected.
//   - GPG, the generalized punctuation graph (Definitions 8-10), adds
//     generalized (AND-)edges for schemes with several punctuatable
//     attributes. Theorems 3/4 restate purgeability and query safety in
//     terms of generalized reachability.
//   - TPG, the transformed punctuation graph (Definition 11), is the
//     practical polynomial-time algorithm: iterated strongly-connected-
//     component condensation with virtual-edge promotion. Theorem 5: the
//     GPG is strongly connected iff the TPG condenses to a single node.
//
// Check is the front door; it returns a Report with the verdict, the
// per-stream purgeability, purge-plan witnesses for safe streams, and a
// human-readable explanation for unsafe ones.
package safety

import (
	"fmt"
	"strings"

	"punctsafe/query"
	"punctsafe/stream"
)

// Report is the full result of safety-checking one CJQ against a
// punctuation scheme set.
type Report struct {
	// Safe is the query-level verdict (Theorem 4 via Theorem 5): true iff
	// the generalized punctuation graph is strongly connected, i.e. there
	// exists at least one safe execution plan.
	Safe bool
	// StreamPurgeable[i] is the Theorem 3 verdict for stream i: whether
	// the join state of stream i (in the all-streams MJoin) is purgeable.
	StreamPurgeable []bool
	// UsefulSchemes are the schemes in ℜ that contribute at least one
	// edge to the generalized punctuation graph; the rest are irrelevant
	// to this query and need not be processed at runtime (§1, reason 2).
	UsefulSchemes []stream.Scheme
	// PurgePlans[i] is a witness purge strategy for stream i (only for
	// purgeable streams): the chained purge order rooted at i.
	PurgePlans []*PurgePlan
	// Unreachable[i] lists, for a non-purgeable stream i, the streams it
	// cannot reach in the GPG — the R̄ set from Theorem 1's proof. New
	// tuples on those streams can forever join with stored tuples of i.
	Unreachable [][]int
	// TPG is the transformed punctuation graph trace that produced the
	// verdict (useful for explanation and for the cmd/punctcheck tool).
	TPG *TPG
}

// Check runs the full safety analysis of q under schemes.
func Check(q *query.CJQ, schemes *stream.SchemeSet) (*Report, error) {
	if q == nil {
		return nil, fmt.Errorf("safety: nil query")
	}
	if schemes == nil {
		schemes = stream.NewSchemeSet()
	}
	if err := validateSchemes(q, schemes); err != nil {
		return nil, err
	}
	gpg := BuildGPG(q, schemes)
	tpg := Transform(q, schemes)

	rep := &Report{
		Safe:            tpg.SingleNode(),
		StreamPurgeable: make([]bool, q.N()),
		UsefulSchemes:   gpg.UsefulSchemes(),
		PurgePlans:      make([]*PurgePlan, q.N()),
		Unreachable:     make([][]int, q.N()),
		TPG:             tpg,
	}
	for i := 0; i < q.N(); i++ {
		reach := gpg.ReachableFrom(i)
		all := true
		for j, ok := range reach {
			if !ok {
				all = false
				rep.Unreachable[i] = append(rep.Unreachable[i], j)
			}
		}
		rep.StreamPurgeable[i] = all
		if all {
			rep.PurgePlans[i] = gpg.PurgePlan(i)
		}
	}
	return rep, nil
}

// validateSchemes checks that every scheme naming a stream of the query
// matches that stream's schema arity. Schemes for streams outside the
// query are permitted (the register holds schemes for the whole system).
func validateSchemes(q *query.CJQ, schemes *stream.SchemeSet) error {
	for i := 0; i < q.N(); i++ {
		sc := q.Stream(i)
		for _, s := range schemes.ForStream(sc.Name()) {
			if err := s.Validate(sc); err != nil {
				return fmt.Errorf("safety: %w", err)
			}
		}
	}
	return nil
}

// Explain renders the report as human-readable text, naming streams.
func (r *Report) Explain(q *query.CJQ) string {
	var b strings.Builder
	if r.Safe {
		fmt.Fprintf(&b, "SAFE: %s admits a safe execution plan (GPG strongly connected; TPG condensed in %d round(s)).\n",
			q, len(r.TPG.Rounds))
	} else {
		fmt.Fprintf(&b, "UNSAFE: %s has no safe execution plan under the given punctuation schemes.\n", q)
	}
	for i := 0; i < q.N(); i++ {
		name := q.Stream(i).Name()
		if r.StreamPurgeable[i] {
			fmt.Fprintf(&b, "  %s: purgeable\n", name)
			if p := r.PurgePlans[i]; p != nil {
				for _, st := range p.Steps {
					fmt.Fprintf(&b, "    %s\n", st.Describe(q))
				}
			}
		} else {
			var blocked []string
			for _, j := range r.Unreachable[i] {
				blocked = append(blocked, q.Stream(j).Name())
			}
			fmt.Fprintf(&b, "  %s: NOT purgeable — no punctuation chain covers new tuples on {%s}\n",
				name, strings.Join(blocked, ", "))
		}
	}
	if len(r.UsefulSchemes) > 0 {
		var us []string
		for _, s := range r.UsefulSchemes {
			us = append(us, s.String())
		}
		fmt.Fprintf(&b, "  useful schemes: %s\n", strings.Join(us, ", "))
	}
	return b.String()
}
