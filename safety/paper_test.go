package safety

import (
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
)

// Schemas used by the paper's running examples. Figure 3/5/8 use
// S1(A,B), S2(B,C), S3(A,C); the auction example uses item/bid.
func s1() *stream.Schema {
	return stream.MustSchema("S1",
		stream.Attribute{Name: "A", Kind: stream.KindInt},
		stream.Attribute{Name: "B", Kind: stream.KindInt})
}
func s2() *stream.Schema {
	return stream.MustSchema("S2",
		stream.Attribute{Name: "B", Kind: stream.KindInt},
		stream.Attribute{Name: "C", Kind: stream.KindInt})
}
func s3() *stream.Schema {
	return stream.MustSchema("S3",
		stream.Attribute{Name: "A", Kind: stream.KindInt},
		stream.Attribute{Name: "C", Kind: stream.KindInt})
}

// figure3Query is Example 2: acyclic chain S1.B=S2.B, S2.C=S3.C.
func figure3Query(t *testing.T) *query.CJQ {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(s1()).AddStream(s2()).AddStream(s3()).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Build()
	if err != nil {
		t.Fatalf("figure3Query: %v", err)
	}
	return q
}

// figure5Query adds the third predicate S3.A=S1.A, making the join graph
// cyclic (Figure 5 and Figure 8 share this query).
func figure5Query(t *testing.T) *query.CJQ {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(s1()).AddStream(s2()).AddStream(s3()).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		Build()
	if err != nil {
		t.Fatalf("figure5Query: %v", err)
	}
	return q
}

// figure5Schemes is Example 3's scheme set: (_,+) for S1, (_,+) for S2,
// (+,_) for S3 — punctuations on S1.B, S2.C and S3.A.
func figure5Schemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
}

// figure8Schemes is §4.2's scheme set:
// {S1(_,+), S2(+,_), S2(_,+), S3(+,+)}.
func figure8Schemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, true),
	)
}

// TestFigure5PG reproduces Example 3: the punctuation graph has exactly
// the edges S2->S1 (via S1.B), S3->S2 (via S2.C) and S1->S3 (via S3.A),
// and is strongly connected, so per Corollary 1 the 3-way MJoin is
// purgeable.
func TestFigure5PG(t *testing.T) {
	q := figure5Query(t)
	pg := BuildPG(q, figure5Schemes())

	want := map[[2]int]bool{
		{1, 0}: true, // S2 -> S1
		{2, 1}: true, // S3 -> S2
		{0, 2}: true, // S1 -> S3
	}
	got := make(map[[2]int]bool)
	for _, e := range pg.Edges() {
		got[[2]int{e.From, e.To}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("PG edges = %v, want %v", got, want)
	}
	for e := range want {
		if !got[e] {
			t.Errorf("missing PG edge %v", e)
		}
	}
	if !pg.OperatorPurgeable() {
		t.Errorf("Figure 5 operator should be purgeable (Corollary 1)")
	}
	for i := 0; i < 3; i++ {
		if !pg.StreamPurgeable(i) {
			t.Errorf("stream %d should be purgeable (Theorem 1)", i)
		}
	}
}

// TestFigure5Safety: Theorem 2 — the CJQ of Figure 5 is safe under
// Example 3's schemes (its PG is strongly connected).
func TestFigure5Safety(t *testing.T) {
	q := figure5Query(t)
	rep, err := Check(q, figure5Schemes())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("Figure 5 query should be safe; report:\n%s", rep.Explain(q))
	}
	for i, ok := range rep.StreamPurgeable {
		if !ok {
			t.Errorf("stream %d should be purgeable", i)
		}
		if rep.PurgePlans[i] == nil {
			t.Errorf("stream %d should have a purge plan", i)
		}
	}
}

// TestFigure7BinaryTreeUnsafe reproduces Figure 7's point: for the very
// same query and schemes, the sub-operator S1 x S2 (the lower binary join
// of the tree plan) is not purgeable — there is no punctuation from S2 to
// purge the tuples of S1.
func TestFigure7BinaryTreeUnsafe(t *testing.T) {
	q := figure5Query(t)
	sub, mapping, err := q.Restrict([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != 2 {
		t.Fatalf("mapping = %v", mapping)
	}
	pg := BuildPG(sub, figure5Schemes())
	if pg.OperatorPurgeable() {
		t.Fatalf("lower binary join S1 x S2 must NOT be purgeable (Figure 7)")
	}
	// Specifically: S2 -> S1 exists (S1.B punctuatable) but S1 -> S2 does
	// not (S2.B is not punctuatable), so S1's state cannot be purged.
	if !pg.StreamPurgeable(1) {
		t.Errorf("S2's state in the binary join should be purgeable")
	}
	if pg.StreamPurgeable(0) {
		t.Errorf("S1's state in the binary join must not be purgeable")
	}
}

// TestFigure8PGNotStronglyConnected: under §4.2's schemes the plain PG is
// not strongly connected (S3 only reaches inward; nothing reaches S3), so
// Corollary 1 alone would wrongly flag the operator unsafe.
func TestFigure8PG(t *testing.T) {
	q := figure5Query(t)
	pg := BuildPG(q, figure8Schemes())
	want := map[[2]int]bool{
		{1, 0}: true, // S2 -> S1 via S1(_,+)
		{0, 1}: true, // S1 -> S2 via S2(+,_)
		{2, 1}: true, // S3 -> S2 via S2(_,+)
	}
	got := make(map[[2]int]bool)
	for _, e := range pg.Edges() {
		got[[2]int{e.From, e.To}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("PG edges = %v, want %v", got, want)
	}
	if pg.OperatorPurgeable() {
		t.Fatalf("plain PG must not be strongly connected under Figure 8 schemes")
	}
	if pg.StreamPurgeable(0) || pg.StreamPurgeable(1) {
		t.Errorf("S1/S2 must not be PG-purgeable (cannot reach S3 via plain edges)")
	}
	if !pg.StreamPurgeable(2) {
		t.Errorf("S3 must be PG-purgeable (reaches S2 then S1)")
	}
}

// TestFigure9GPG reproduces Example 4: the generalized punctuation graph
// adds the generalized edge {S1,S2} -> S3 from scheme S3(+,+), making
// every stream purgeable (Theorem 3) and the operator purgeable
// (Corollary 2).
func TestFigure9GPG(t *testing.T) {
	q := figure5Query(t)
	gpg := BuildGPG(q, figure8Schemes())

	gens := gpg.GenEdges()
	if len(gens) != 1 {
		t.Fatalf("want exactly one generalized edge, got %d", len(gens))
	}
	ge := gens[0]
	if ge.Head != 2 {
		t.Errorf("generalized edge head = %d, want S3 (2)", ge.Head)
	}
	if len(ge.Attrs) != 2 {
		t.Fatalf("generalized edge attrs = %v", ge.Attrs)
	}
	// Attribute A (position 0) joins S1; attribute C (position 1) joins S2.
	if ge.Attrs[0].Attr != 0 || len(ge.Attrs[0].Partners) != 1 || ge.Attrs[0].Partners[0] != 0 {
		t.Errorf("attr A partners = %+v, want [S1]", ge.Attrs[0])
	}
	if ge.Attrs[1].Attr != 1 || len(ge.Attrs[1].Partners) != 1 || ge.Attrs[1].Partners[0] != 1 {
		t.Errorf("attr C partners = %+v, want [S2]", ge.Attrs[1])
	}

	for i := 0; i < 3; i++ {
		if !gpg.StreamPurgeable(i) {
			t.Errorf("stream %d should be GPG-purgeable (Theorem 3)", i)
		}
	}
	if !gpg.StronglyConnected() {
		t.Errorf("GPG should be strongly connected (Corollary 2)")
	}
}

// TestFigure10TPG reproduces the Figure 10 transformation: round 1 merges
// the {S1,S2} strongly connected component; round 2 gains the virtual
// edges between {S1,S2} and S3 (scheme S3(+,+) has punctuatable
// attributes joining only streams covered by the virtual node) and merges
// everything; the result is a single virtual node, so per Theorem 5 the
// query is safe.
func TestFigure10TPG(t *testing.T) {
	q := figure5Query(t)
	tpg := Transform(q, figure8Schemes())
	if !tpg.SingleNode() {
		t.Fatalf("TPG must condense to a single node; trace:\n%s", tpg)
	}
	if len(tpg.Rounds) < 2 {
		t.Fatalf("expected at least two transformation rounds, got %d:\n%s", len(tpg.Rounds), tpg)
	}
	r1 := tpg.Rounds[0]
	if len(r1.Nodes) != 3 {
		t.Fatalf("round 1 should start from 3 singleton nodes, got %v", r1.Nodes)
	}
	// Round 2 must contain a node covering exactly {S1,S2}.
	r2 := tpg.Rounds[1]
	found := false
	for _, c := range r2.Nodes {
		if len(c) == 2 && c[0] == 0 && c[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("round 2 should have virtual node {S1,S2}; got %v", r2.Nodes)
	}
	final := tpg.FinalNodes()
	if len(final) != 1 || len(final[0]) != 3 {
		t.Errorf("final partition = %v, want one node covering all three streams", final)
	}
}

// TestFigure8Safety: Theorem 4 — the query is safe under the Figure 8
// schemes even though its plain PG is not strongly connected.
func TestFigure8Safety(t *testing.T) {
	q := figure5Query(t)
	rep, err := Check(q, figure8Schemes())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("Figure 8 query should be safe; report:\n%s", rep.Explain(q))
	}
	for i := range rep.StreamPurgeable {
		if !rep.StreamPurgeable[i] {
			t.Errorf("stream %d should be purgeable", i)
		}
	}
}

// TestAuctionExample reproduces Example 1/the introduction: item(sellerid,
// itemid, name, initialprice) joined with bid(bidderid, itemid, increase)
// on itemid.
func TestAuctionExample(t *testing.T) {
	item := stream.MustSchema("item",
		stream.Attribute{Name: "sellerid", Kind: stream.KindInt},
		stream.Attribute{Name: "itemid", Kind: stream.KindInt},
		stream.Attribute{Name: "name", Kind: stream.KindString},
		stream.Attribute{Name: "initialprice", Kind: stream.KindFloat})
	bid := stream.MustSchema("bid",
		stream.Attribute{Name: "bidderid", Kind: stream.KindInt},
		stream.Attribute{Name: "itemid", Kind: stream.KindInt},
		stream.Attribute{Name: "increase", Kind: stream.KindFloat})
	q, err := query.NewBuilder().
		AddStream(item).AddStream(bid).
		JoinOn("item", "bid", "itemid").
		Build()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("both schemes safe", func(t *testing.T) {
		// Punctuations on item.itemid (each itemid unique -> item punctuates
		// after the item tuple) and on bid.itemid (auction closed).
		schemes := stream.NewSchemeSet(
			stream.MustScheme("item", false, true, false, false),
			stream.MustScheme("bid", false, true, false),
		)
		rep, err := Check(q, schemes)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Safe {
			t.Fatalf("auction query should be safe:\n%s", rep.Explain(q))
		}
	})

	t.Run("bidderid scheme only is unsafe", func(t *testing.T) {
		// §1: "if the punctuation scheme shows that there are only
		// punctuations on bidderid from bid stream, then the item stream
		// in the above query can never be purged."
		schemes := stream.NewSchemeSet(
			stream.MustScheme("bid", true, false, false),
		)
		rep, err := Check(q, schemes)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Safe {
			t.Fatalf("auction query must be unsafe with bidderid-only punctuation")
		}
		if rep.StreamPurgeable[0] {
			t.Errorf("item state must not be purgeable")
		}
	})

	t.Run("bid scheme only", func(t *testing.T) {
		// Only "auction closed" punctuations on bid.itemid: item tuples can
		// be purged, but bid tuples cannot (no punctuation from item), so
		// the query is unsafe.
		schemes := stream.NewSchemeSet(
			stream.MustScheme("bid", false, true, false),
		)
		rep, err := Check(q, schemes)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Safe {
			t.Fatalf("query must be unsafe with bid-side punctuation only")
		}
		if !rep.StreamPurgeable[0] {
			t.Errorf("item state should be purgeable (bid punctuates itemid)")
		}
		if rep.StreamPurgeable[1] {
			t.Errorf("bid state must not be purgeable")
		}
	})
}

// TestFigure3ChainSchemes exercises the §3.2 motivating example: purging
// S1's state on the acyclic chain needs punctuations on S2.B and S3.C.
func TestFigure3ChainSchemes(t *testing.T) {
	q := figure3Query(t)
	// Punctuations on S2.B and S3.C: S1 can purge via the chain, but S2
	// and S3 cannot be purged (no punctuations on S1.B or S2.C).
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S3", false, true),
	)
	gpg := BuildGPG(q, schemes)
	if !gpg.StreamPurgeable(0) {
		t.Errorf("S1 should be purgeable by chaining S2.B then S3.C punctuations")
	}
	if gpg.StreamPurgeable(1) {
		t.Errorf("S2 must not be purgeable")
	}
	if gpg.StreamPurgeable(2) {
		t.Errorf("S3 must not be purgeable")
	}
	rep, err := Check(q, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Errorf("chain query must be unsafe overall")
	}
	// The purge plan witness for S1 must punctuate S2 before S3 (the
	// chained purge strategy's order).
	plan := gpg.PurgePlan(0)
	if plan == nil {
		t.Fatal("expected a purge plan for S1")
	}
	if len(plan.Steps) != 2 || plan.Steps[0].Stream != 1 || plan.Steps[1].Stream != 2 {
		t.Errorf("purge plan steps = %+v, want S2 then S3", plan.Steps)
	}
}

// TestUnusableScheme: a scheme punctuating a non-join attribute
// contributes nothing (finitely many instantiations cannot cover the
// attribute's infinite domain).
func TestUnusableScheme(t *testing.T) {
	q := figure3Query(t)
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", true, false), // S1.A is not a join attribute here
	)
	gpg := BuildGPG(q, schemes)
	if len(gpg.PG().Edges()) != 0 || len(gpg.GenEdges()) != 0 {
		t.Errorf("scheme on non-join attribute must not create edges")
	}
	if len(gpg.UsefulSchemes()) != 0 {
		t.Errorf("scheme must be reported as not useful")
	}
	// Multi-attribute scheme with one non-join attribute is also unusable.
	schemes2 := stream.NewSchemeSet(
		stream.MustScheme("S1", true, true), // A not a join attr, B is
	)
	gpg2 := BuildGPG(q, schemes2)
	if len(gpg2.GenEdges()) != 0 {
		t.Errorf("partially-joinable multi-attribute scheme must be unusable")
	}
}

// TestMultiAttrSchemeSameStream: a multi-attribute scheme whose
// punctuatable attributes all join the same partner behaves like a plain
// edge (the §3.1 conjunctive binary case).
func TestMultiAttrSchemeSameStream(t *testing.T) {
	a := stream.MustSchema("L",
		stream.Attribute{Name: "X", Kind: stream.KindInt},
		stream.Attribute{Name: "Y", Kind: stream.KindInt})
	b := stream.MustSchema("R",
		stream.Attribute{Name: "X", Kind: stream.KindInt},
		stream.Attribute{Name: "Y", Kind: stream.KindInt})
	q, err := query.NewBuilder().
		AddStream(a).AddStream(b).
		Join("L.X", "R.X").
		Join("L.Y", "R.Y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	schemes := stream.NewSchemeSet(
		stream.MustScheme("L", true, true),
		stream.MustScheme("R", true, true),
	)
	rep, err := Check(q, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("conjunctive binary join with both-side schemes should be safe:\n%s", rep.Explain(q))
	}
}
