package safety

import (
	"strings"
	"testing"

	"punctsafe/stream"
)

func TestDotOutputs(t *testing.T) {
	q := figure5Query(t)

	pg := BuildPG(q, figure5Schemes())
	d := pg.Dot()
	for _, want := range []string{"digraph PG", `"S2" -> "S1"`, `"S3" -> "S2"`, `"S1" -> "S3"`} {
		if !strings.Contains(d, want) {
			t.Errorf("PG dot missing %q:\n%s", want, d)
		}
	}

	gpg := BuildGPG(q, figure8Schemes())
	d = gpg.Dot()
	for _, want := range []string{"digraph GPG", "shape=diamond", "S3(+, +)", `-> "S3" [style=bold]`} {
		if !strings.Contains(d, want) {
			t.Errorf("GPG dot missing %q:\n%s", want, d)
		}
	}

	tpg := Transform(q, figure8Schemes())
	d = tpg.Dot()
	if !strings.Contains(d, "digraph TPG") || !strings.Contains(d, "S1, S2, S3") {
		t.Errorf("TPG dot should show the single final virtual node:\n%s", d)
	}

	// An unsafe instance's TPG dot shows multiple surviving nodes.
	partial := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", false, true),
		// S3 has no scheme: the cycle cannot close.
	)
	unsafeTPG := Transform(q, partial)
	d = unsafeTPG.Dot()
	if strings.Contains(d, "S1, S2, S3") {
		t.Errorf("unsafe TPG must not condense fully:\n%s", d)
	}
}
