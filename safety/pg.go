package safety

import (
	"fmt"
	"strings"

	"punctsafe/internal/graph"
	"punctsafe/query"
	"punctsafe/stream"
)

// PGEdge is one directed edge of the punctuation graph: From -> To created
// because To's side of Pred is punctuatable under Scheme (Definition 7).
// Punctuations from stream To (on the predicate's To-attribute) purge
// tuples stored for stream From.
type PGEdge struct {
	From   int
	To     int
	Pred   query.Predicate
	Scheme stream.Scheme
}

// PG is the punctuation graph of Definition 7 for the query viewed as a
// single MJoin operator over all its streams. Only schemes with exactly
// one punctuatable attribute create edges; multi-attribute schemes are
// the business of the generalized punctuation graph (Definition 8).
type PG struct {
	q     *query.CJQ
	g     *graph.Digraph
	edges []PGEdge
}

// BuildPG constructs the punctuation graph of q under the scheme set.
// Construction is linear in |predicates| x |schemes per stream| (§4.1,
// Example 3: "such a punctuation graph can be constructed in linear
// time").
func BuildPG(q *query.CJQ, schemes *stream.SchemeSet) *PG {
	pg := &PG{q: q, g: graph.NewDigraph(q.N())}
	for _, p := range q.Predicates() {
		// Edge S_right -> S_left when left's attribute is punctuatable,
		// and symmetrically.
		pg.addIfPunctuatable(schemes, p.Right, p.Left, p.LeftAttr, p)
		pg.addIfPunctuatable(schemes, p.Left, p.Right, p.RightAttr, p)
	}
	return pg
}

func (pg *PG) addIfPunctuatable(schemes *stream.SchemeSet, from, to, toAttr int, pred query.Predicate) {
	for _, s := range schemes.ForStream(pg.q.Stream(to).Name()) {
		idx := s.PunctuatableIndexes()
		if len(idx) == 1 && idx[0] == toAttr {
			pg.g.AddEdge(from, to)
			pg.edges = append(pg.edges, PGEdge{From: from, To: to, Pred: pred, Scheme: s})
		}
	}
}

// Graph exposes the underlying digraph (owned by the PG; do not modify).
func (pg *PG) Graph() *graph.Digraph { return pg.g }

// Edges returns the labeled edge list (owned by the PG).
func (pg *PG) Edges() []PGEdge { return pg.edges }

// StreamPurgeable is Theorem 1: the join state of stream i is purgeable
// iff i reaches every other node in the punctuation graph. Valid when all
// schemes are simple (single punctuatable attribute); for arbitrary
// schemes use GPG.StreamPurgeable (Theorem 3).
func (pg *PG) StreamPurgeable(i int) bool { return pg.g.ReachesAll(i) }

// OperatorPurgeable is Corollary 1: the operator (and, per Theorem 2, the
// query) is purgeable iff the punctuation graph is strongly connected.
func (pg *PG) OperatorPurgeable() bool { return pg.g.StronglyConnected() }

// String renders the edges with stream names.
func (pg *PG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PG(%d streams)", pg.q.N())
	for _, e := range pg.edges {
		fmt.Fprintf(&b, " %s->%s", pg.q.Stream(e.From).Name(), pg.q.Stream(e.To).Name())
	}
	return b.String()
}
