package safety

import (
	"fmt"
	"sort"
	"strings"

	"punctsafe/internal/graph"
	"punctsafe/query"
	"punctsafe/stream"
)

// TPG is the transformed punctuation graph of Definition 11: the practical
// polynomial-time safety checking construct. The transformation repeatedly
// (i) finds strongly connected components, (ii) merges each non-trivial
// component into a virtual node, and (iii) rebuilds directed edges between
// the (virtual) nodes — promoting the original edges and adding virtual
// edges for punctuation schemes whose punctuatable attributes all join
// into a single (virtual) node — until either a single virtual node
// remains or no non-trivial component exists.
//
// Theorem 5: the query's GPG is strongly connected iff the transformation
// terminates with a single node, so TPG.SingleNode() is the query safety
// verdict (Theorem 4) computed in polynomial time: at most n-1 rounds,
// each a linear-time SCC pass plus an edge rebuild linear in the total
// partner-list size of the usable schemes.
type TPG struct {
	q *query.CJQ
	// Rounds traces the transformation; Rounds[len-1] is the final state.
	Rounds []TPGRound
}

// TPGRound is the state of the transformed graph at the start of one
// transformation round: the node partition and the directed edges derived
// for it (by promotion and virtual-edge construction).
type TPGRound struct {
	// Nodes[i] is the set of original stream indices covered by (virtual)
	// node i, ascending. Singleton sets are raw stream nodes.
	Nodes [][]int
	// Edges are the directed edges between node indices in this round.
	Edges [][2]int
	// Merged reports whether this round found a non-trivial strongly
	// connected component (and therefore a further round follows).
	Merged bool
}

// usableScheme is one scheme admissible for purging: every punctuatable
// attribute is a join attribute of its stream within the query.
type usableScheme struct {
	scheme stream.Scheme
	// partners[k] lists the streams joined with the k-th punctuatable
	// attribute.
	partners [][]int
}

// Transform runs the Definition 11 procedure for q under the scheme set.
func Transform(q *query.CJQ, schemes *stream.SchemeSet) *TPG {
	t := &TPG{q: q}
	n := q.N()

	schemesByStream := make([][]usableScheme, n)
	for i := 0; i < n; i++ {
		for _, s := range schemes.ForStream(q.Stream(i).Name()) {
			us := usableScheme{scheme: s}
			ok := true
			for _, a := range s.PunctuatableIndexes() {
				partners := q.JoinPartners(i, a)
				if len(partners) == 0 {
					ok = false
					break
				}
				us.partners = append(us.partners, partners)
			}
			if ok {
				schemesByStream[i] = append(schemesByStream[i], us)
			}
		}
	}

	// partition: node id per stream.
	nodeOf := make([]int, n)
	for i := range nodeOf {
		nodeOf[i] = i
	}
	nNodes := n

	// Generation-stamped scratch arrays for the per-scheme tail-set
	// intersection (avoids per-round allocations and map lookups).
	stamp := make([]int, n)
	cnt := make([]int, n)
	hits := make([]int, 0, n)
	gen := 0

	for {
		covers := make([][]int, nNodes)
		for s, nd := range nodeOf {
			covers[nd] = append(covers[nd], s)
		}
		// Stream indices are scanned in order, so covers come out sorted.

		// Edge rebuild: for every usable scheme on stream s (node V), add
		// U -> V for every other node U that alone supplies purge
		// constants for all punctuatable attributes — i.e. U holds a join
		// partner of every punctuatable attribute. This subsumes directed
		// edge promotion (simple schemes, Definition 11(i)) and virtual
		// directed edge construction (Definition 11(ii)).
		g := graph.NewDigraph(nNodes)
		var edges [][2]int
		for s := 0; s < n; s++ {
			v := nodeOf[s]
			for _, us := range schemesByStream[s] {
				gen++
				hits = hits[:0]
				for k, partners := range us.partners {
					for _, p := range partners {
						nd := nodeOf[p]
						if k == 0 {
							if stamp[nd] != gen {
								stamp[nd] = gen
								cnt[nd] = 1
								hits = append(hits, nd)
							}
						} else if stamp[nd] == gen && cnt[nd] == k {
							cnt[nd] = k + 1
						}
					}
				}
				m := len(us.partners)
				for _, nd := range hits {
					if nd != v && cnt[nd] == m && !g.HasEdge(nd, v) {
						g.AddEdge(nd, v)
						edges = append(edges, [2]int{nd, v})
					}
				}
			}
		}

		round := TPGRound{Nodes: covers, Edges: edges}
		comp, count := g.SCC()
		if count == nNodes || nNodes <= 1 {
			// No non-trivial strongly connected component: terminate.
			t.Rounds = append(t.Rounds, round)
			return t
		}
		round.Merged = true
		t.Rounds = append(t.Rounds, round)

		// Merge: streams move to their node's component id.
		for s := range nodeOf {
			nodeOf[s] = comp[nodeOf[s]]
		}
		nNodes = count
	}
}

// SingleNode reports whether the transformation condensed the query to a
// single virtual node — per Theorem 5, exactly when the GPG is strongly
// connected, i.e. the query is safe (Theorem 4).
func (t *TPG) SingleNode() bool {
	final := t.Rounds[len(t.Rounds)-1]
	return len(final.Nodes) == 1
}

// FinalNodes returns the node partition the transformation terminated
// with: one entry per surviving (virtual) node, covering original stream
// indices.
func (t *TPG) FinalNodes() [][]int {
	final := t.Rounds[len(t.Rounds)-1]
	out := make([][]int, len(final.Nodes))
	for i, c := range final.Nodes {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// String renders the transformation trace with stream names.
func (t *TPG) String() string {
	var b strings.Builder
	for r, round := range t.Rounds {
		fmt.Fprintf(&b, "round %d:", r+1)
		for i, c := range round.Nodes {
			var names []string
			for _, s := range c {
				names = append(names, t.q.Stream(s).Name())
			}
			fmt.Fprintf(&b, " N%d{%s}", i, strings.Join(names, ","))
		}
		edges := append([][2]int(nil), round.Edges...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		for _, e := range edges {
			fmt.Fprintf(&b, " N%d->N%d", e[0], e[1])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
