package safety

import (
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
)

// corpusCase is one hand-built safety instance with its expected verdict
// and (optionally) expected per-stream purgeability.
type corpusCase struct {
	name      string
	build     func(t *testing.T) (*query.CJQ, *stream.SchemeSet)
	safe      bool
	purgeable []bool // nil = skip per-stream assertions
	minRounds int    // minimum TPG rounds expected (0 = skip)
}

func ia(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }

func mustQ(t *testing.T, schemas []*stream.Schema, preds []query.Predicate) *query.CJQ {
	t.Helper()
	q, err := query.NewCJQ(schemas, preds)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestSafetyCorpus pins down tricky instances the randomized property
// tests may sample only rarely: chained generalized edges that fire in
// sequence, multi-round TPG condensations, schemes rendered unusable by
// non-join attributes, and asymmetric purgeability.
func TestSafetyCorpus(t *testing.T) {
	cases := []corpusCase{
		{
			// Two-stream ping-pong: the minimal safe instance.
			name: "binary both sides",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				a := stream.MustSchema("A", ia("k"))
				b := stream.MustSchema("B", ia("k"))
				q := mustQ(t, []*stream.Schema{a, b},
					[]query.Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}})
				return q, stream.NewSchemeSet(
					stream.MustScheme("A", true), stream.MustScheme("B", true))
			},
			safe:      true,
			purgeable: []bool{true, true},
		},
		{
			// One-sided scheme: B purgeable (A punctuates), A not.
			name: "binary one side",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				a := stream.MustSchema("A", ia("k"))
				b := stream.MustSchema("B", ia("k"))
				q := mustQ(t, []*stream.Schema{a, b},
					[]query.Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}})
				return q, stream.NewSchemeSet(stream.MustScheme("A", true))
			},
			safe:      false,
			purgeable: []bool{false, true},
		},
		{
			// Generalized edges chained: {B,C}=>D fires only after a
			// multi-attribute edge {A,B}=>C fired first — two GPG fixpoint
			// iterations, and a multi-round TPG.
			name: "hyperedge chain",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				a := stream.MustSchema("A", ia("x"), ia("y"))
				b := stream.MustSchema("B", ia("x"), ia("z"))
				c := stream.MustSchema("C", ia("y"), ia("z"), ia("w"))
				d := stream.MustSchema("D", ia("z"), ia("w"))
				q := mustQ(t, []*stream.Schema{a, b, c, d}, []query.Predicate{
					{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}, // A.x = B.x
					{Left: 0, LeftAttr: 1, Right: 2, RightAttr: 0}, // A.y = C.y
					{Left: 1, LeftAttr: 1, Right: 2, RightAttr: 1}, // B.z = C.z
					{Left: 1, LeftAttr: 1, Right: 3, RightAttr: 0}, // B.z = D.z
					{Left: 2, LeftAttr: 2, Right: 3, RightAttr: 1}, // C.w = D.w
				})
				return q, stream.NewSchemeSet(
					stream.MustScheme("A", true, false),       // A.x: edge B->A
					stream.MustScheme("B", true, false),       // B.x: edge A->B
					stream.MustScheme("C", true, true, false), // C(y,z): {A,B}=>C
					stream.MustScheme("D", true, true),        // D(z,w): {B,C}=>D
				)
			},
			// A and B reach everything (their plain cycle fires both
			// generalized edges in sequence); C and D have no outgoing
			// edges at all, so they reach only themselves.
			safe:      false,
			purgeable: []bool{true, true, false, false},
		},
		{
			// Same as above plus a back-edge from D so the whole query is
			// safe — exercises a 3-round TPG condensation.
			name: "hyperedge chain closed",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				a := stream.MustSchema("A", ia("x"), ia("y"))
				b := stream.MustSchema("B", ia("x"), ia("z"))
				c := stream.MustSchema("C", ia("y"), ia("z"), ia("w"))
				d := stream.MustSchema("D", ia("z"), ia("w"))
				q := mustQ(t, []*stream.Schema{a, b, c, d}, []query.Predicate{
					{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
					{Left: 0, LeftAttr: 1, Right: 2, RightAttr: 0},
					{Left: 1, LeftAttr: 1, Right: 2, RightAttr: 1},
					{Left: 1, LeftAttr: 1, Right: 3, RightAttr: 0},
					{Left: 2, LeftAttr: 2, Right: 3, RightAttr: 1},
				})
				return q, stream.NewSchemeSet(
					stream.MustScheme("A", true, false),
					stream.MustScheme("B", true, false),
					stream.MustScheme("B", false, true), // B.z: D->B and C->B back-edges
					stream.MustScheme("C", true, true, false),
					stream.MustScheme("D", true, true),
				)
			},
			safe:      true,
			minRounds: 2,
		},
		{
			// A scheme whose second punctuatable attribute is not a join
			// attribute: unusable, so the otherwise-safe query is unsafe.
			name: "unusable multi-attribute scheme",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				a := stream.MustSchema("A", ia("k"), ia("junk"))
				b := stream.MustSchema("B", ia("k"))
				q := mustQ(t, []*stream.Schema{a, b},
					[]query.Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}})
				return q, stream.NewSchemeSet(
					stream.MustScheme("A", true, true), // junk not a join attr
					stream.MustScheme("B", true))
			},
			safe:      false,
			purgeable: []bool{true, false},
		},
		{
			// Two predicates between the same pair on different attrs;
			// scheme on only one attr still suffices (§3.1 conjunctive).
			name: "conjunctive binary single scheme each",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				a := stream.MustSchema("A", ia("x"), ia("y"))
				b := stream.MustSchema("B", ia("x"), ia("y"))
				q := mustQ(t, []*stream.Schema{a, b}, []query.Predicate{
					{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
					{Left: 0, LeftAttr: 1, Right: 1, RightAttr: 1},
				})
				return q, stream.NewSchemeSet(
					stream.MustScheme("A", true, false),
					stream.MustScheme("B", false, true))
			},
			safe: true,
		},
		{
			// Star: hub punctuates its single join attribute shared by all
			// spokes, spokes punctuate theirs — safe; removing the hub
			// scheme strands every spoke.
			name: "star hub scheme",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				hub := stream.MustSchema("H", ia("k"))
				s1 := stream.MustSchema("P1", ia("k"))
				s2 := stream.MustSchema("P2", ia("k"))
				s3 := stream.MustSchema("P3", ia("k"))
				q := mustQ(t, []*stream.Schema{hub, s1, s2, s3}, []query.Predicate{
					{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
					{Left: 0, LeftAttr: 0, Right: 2, RightAttr: 0},
					{Left: 0, LeftAttr: 0, Right: 3, RightAttr: 0},
				})
				return q, stream.NewSchemeSet(
					stream.MustScheme("H", true),
					stream.MustScheme("P1", true),
					stream.MustScheme("P2", true),
					stream.MustScheme("P3", true))
			},
			safe: true,
		},
		{
			name: "star without hub scheme",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				hub := stream.MustSchema("H", ia("k"))
				s1 := stream.MustSchema("P1", ia("k"))
				s2 := stream.MustSchema("P2", ia("k"))
				q := mustQ(t, []*stream.Schema{hub, s1, s2}, []query.Predicate{
					{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
					{Left: 0, LeftAttr: 0, Right: 2, RightAttr: 0},
				})
				return q, stream.NewSchemeSet(
					stream.MustScheme("P1", true),
					stream.MustScheme("P2", true))
			},
			safe: false,
			// The hub can be purged (spokes punctuate k), the spokes not.
			purgeable: []bool{true, false, false},
		},
		{
			// Watermark schemes behave like equality schemes for safety.
			name: "ordered schemes safe",
			build: func(t *testing.T) (*query.CJQ, *stream.SchemeSet) {
				a := stream.MustSchema("A", ia("ts"))
				b := stream.MustSchema("B", ia("ts"))
				q := mustQ(t, []*stream.Schema{a, b},
					[]query.Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}})
				return q, stream.NewSchemeSet(
					stream.MustOrderedScheme("A", []bool{true}, []bool{true}),
					stream.MustOrderedScheme("B", []bool{true}, []bool{true}))
			},
			safe:      true,
			purgeable: []bool{true, true},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, schemes := c.build(t)
			rep, err := Check(q, schemes)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Safe != c.safe {
				t.Fatalf("safe = %v, want %v\n%s\nTPG:\n%s", rep.Safe, c.safe, rep.Explain(q), rep.TPG)
			}
			// Theorem 5 must hold here too.
			if got := BuildGPG(q, schemes).StronglyConnected(); got != c.safe {
				t.Fatalf("GPG verdict %v disagrees with expected %v", got, c.safe)
			}
			if c.purgeable != nil {
				for i, want := range c.purgeable {
					if rep.StreamPurgeable[i] != want {
						t.Errorf("stream %d purgeable = %v, want %v", i, rep.StreamPurgeable[i], want)
					}
				}
			}
			if c.minRounds > 0 && len(rep.TPG.Rounds) < c.minRounds {
				t.Errorf("TPG rounds = %d, want >= %d:\n%s", len(rep.TPG.Rounds), c.minRounds, rep.TPG)
			}
		})
	}
}
