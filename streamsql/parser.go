package streamsql

import (
	"fmt"
	"strconv"
	"strings"

	"punctsafe/stream"
)

// Script is a parsed streamsql document.
type Script struct {
	// Streams are the declared stream schemas in declaration order.
	Streams []*stream.Schema
	// Schemes is the declared punctuation scheme set.
	Schemes *stream.SchemeSet
	// Queries are the SELECT statements in order.
	Queries []*SelectStmt
}

// SelectStmt is one parsed continuous query.
type SelectStmt struct {
	// Star is true for SELECT *.
	Star bool
	// Columns are the projected column references (empty when Star).
	Columns []ColRef
	// From are the stream names joined.
	From []string
	// Joins are the equality predicates between two stream columns.
	Joins []JoinPred
	// Filters are the equality predicates against literals.
	Filters []FilterPred
}

// ColRef is a qualified column reference stream.column.
type ColRef struct {
	Stream string
	Column string
}

func (c ColRef) String() string { return c.Stream + "." + c.Column }

// JoinPred is Left = Right between two streams.
type JoinPred struct {
	Left  ColRef
	Right ColRef
}

// FilterPred is Col = Value.
type FilterPred struct {
	Col   ColRef
	Value stream.Value
}

// parser is a recursive-descent parser over the token list.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a streamsql script.
func Parse(src string) (*Script, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	script := &Script{Schemes: stream.NewSchemeSet()}
	declared := make(map[string]*stream.Schema)
	for !p.atEOF() {
		switch {
		case p.peekKeyword("CREATE"):
			sc, err := p.parseCreateStream()
			if err != nil {
				return nil, err
			}
			if _, dup := declared[sc.Name()]; dup {
				return nil, fmt.Errorf("streamsql: stream %q declared twice", sc.Name())
			}
			declared[sc.Name()] = sc
			script.Streams = append(script.Streams, sc)
		case p.peekKeyword("DECLARE"):
			s, err := p.parseDeclareScheme(declared)
			if err != nil {
				return nil, err
			}
			script.Schemes.Add(s)
		case p.peekKeyword("SELECT"):
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			script.Queries = append(script.Queries, q)
		default:
			return nil, p.errHere("expected CREATE, DECLARE or SELECT, got %s", p.peek())
		}
	}
	return script, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errHere(format string, args ...interface{}) error {
	t := p.peek()
	return fmt.Errorf("streamsql: line %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive).
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peekKeyword(kw) {
		return p.errHere("expected %s, got %s", kw, p.peek())
	}
	p.advance()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind != tokSymbol || t.text != sym {
		return p.errHere("expected %q, got %s", sym, t)
	}
	p.advance()
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errHere("expected identifier, got %s", t)
	}
	p.advance()
	return t.text, nil
}

// parseCreateStream parses CREATE STREAM name (col TYPE, ...);
func (p *parser) parseCreateStream() (*stream.Schema, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("STREAM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var attrs []stream.Attribute
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := kindOf(typ)
		if err != nil {
			return nil, p.errHere("%v", err)
		}
		attrs = append(attrs, stream.Attribute{Name: col, Kind: kind})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	return stream.NewSchema(name, attrs...)
}

func kindOf(typ string) (stream.Kind, error) {
	switch strings.ToUpper(typ) {
	case "INT", "INTEGER", "BIGINT":
		return stream.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return stream.KindFloat, nil
	case "STRING", "VARCHAR", "TEXT":
		return stream.KindString, nil
	default:
		return stream.KindInvalid, fmt.Errorf("unknown type %q", typ)
	}
}

// parseDeclareScheme parses either the named form
//
//	DECLARE SCHEME ON stream (col [ORDERED], ...);
//
// or the positional mask form of the paper
//
//	DECLARE SCHEME stream (_, +, <);
func (p *parser) parseDeclareScheme(declared map[string]*stream.Schema) (stream.Scheme, error) {
	if err := p.expectKeyword("DECLARE"); err != nil {
		return stream.Scheme{}, err
	}
	// Optional PUNCTUATION noise word.
	if p.peekKeyword("PUNCTUATION") {
		p.advance()
	}
	if err := p.expectKeyword("SCHEME"); err != nil {
		return stream.Scheme{}, err
	}
	named := false
	if p.peekKeyword("ON") {
		p.advance()
		named = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return stream.Scheme{}, err
	}
	sc, ok := declared[name]
	if !ok {
		return stream.Scheme{}, p.errHere("scheme on undeclared stream %q", name)
	}
	if err := p.expectSymbol("("); err != nil {
		return stream.Scheme{}, err
	}
	punct := make([]bool, sc.Arity())
	ordered := make([]bool, sc.Arity())
	if named {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return stream.Scheme{}, err
			}
			i := sc.Index(col)
			if i < 0 {
				return stream.Scheme{}, p.errHere("stream %q has no column %q", name, col)
			}
			punct[i] = true
			if p.peekKeyword("ORDERED") {
				p.advance()
				ordered[i] = true
			}
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	} else {
		for i := 0; ; i++ {
			t := p.peek()
			var mark string
			switch {
			case t.kind == tokIdent && t.text == "_":
				mark = "_"
			case t.kind == tokSymbol && (t.text == "+" || t.text == "<"):
				mark = t.text
			default:
				return stream.Scheme{}, p.errHere("expected _, + or <, got %s", t)
			}
			p.advance()
			if i >= sc.Arity() {
				return stream.Scheme{}, p.errHere("scheme mask longer than %s", sc)
			}
			punct[i] = mark != "_"
			ordered[i] = mark == "<"
			if p.acceptSymbol(",") {
				continue
			}
			if i+1 != sc.Arity() {
				return stream.Scheme{}, p.errHere("scheme mask has %d marks, stream %q has %d columns", i+1, name, sc.Arity())
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return stream.Scheme{}, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return stream.Scheme{}, err
	}
	s, err := stream.NewOrderedScheme(name, punct, ordered)
	if err != nil {
		return stream.Scheme{}, fmt.Errorf("streamsql: %w", err)
	}
	if err := s.Validate(sc); err != nil {
		return stream.Scheme{}, fmt.Errorf("streamsql: %w", err)
	}
	return s, nil
}

// parseSelect parses SELECT list FROM s1, s2 [WHERE p AND p ...];
func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.acceptSymbol("*") {
		stmt.Star = true
	} else {
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, ref)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, name)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.peekKeyword("WHERE") {
		p.advance()
		for {
			if err := p.parsePredicate(stmt); err != nil {
				return nil, err
			}
			if p.peekKeyword("AND") {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	s, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if err := p.expectSymbol("."); err != nil {
		return ColRef{}, err
	}
	c, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Stream: s, Column: c}, nil
}

func (p *parser) parsePredicate(stmt *SelectStmt) error {
	left, err := p.parseColRef()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	t := p.peek()
	switch t.kind {
	case tokIdent:
		right, err := p.parseColRef()
		if err != nil {
			return err
		}
		stmt.Joins = append(stmt.Joins, JoinPred{Left: left, Right: right})
	case tokNumber:
		p.advance()
		v, err := numberValue(t.text)
		if err != nil {
			return p.errHere("%v", err)
		}
		stmt.Filters = append(stmt.Filters, FilterPred{Col: left, Value: v})
	case tokString:
		p.advance()
		stmt.Filters = append(stmt.Filters, FilterPred{Col: left, Value: stream.Str(t.text)})
	default:
		return p.errHere("expected column reference or literal, got %s", t)
	}
	return nil
}

// numberValue parses an integer or float literal.
func numberValue(text string) (stream.Value, error) {
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return stream.Value{}, err
		}
		return stream.Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return stream.Value{}, err
	}
	return stream.Int(i), nil
}
