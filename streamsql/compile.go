package streamsql

import (
	"fmt"
	"sort"
	"strings"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// CompiledQuery is one SELECT statement resolved against the script's
// declarations: the continuous join query, per-stream literal filters,
// the projection over the join output, and the safety verdict.
type CompiledQuery struct {
	Stmt *SelectStmt
	// Query is the continuous join query the FROM/WHERE clauses define.
	Query *query.CJQ
	// Filters are the literal-equality selections, resolved to (stream
	// index, attribute index, value).
	Filters []CompiledFilter
	// Projection names the join-output columns the SELECT list keeps
	// (<stream>_<attr>, matching exec.MJoin's output schema); nil for
	// SELECT *.
	Projection []string
	// Report is the safety analysis under the script's scheme set.
	Report *safety.Report
}

// CompiledFilter is a resolved literal filter.
type CompiledFilter struct {
	Stream int
	Attr   int
	Value  stream.Value
}

// FilterKey renders the query's literal filters canonically — sorted
// "stream.attr=value" terms keyed by stream and attribute NAME, so two
// statements whose filters agree produce the same key regardless of
// FROM-clause listing order or filter ordering. The engine folds this
// into the share tag: filters decide which tuples enter a shared tree,
// so they are part of the tree's physical identity (projections are
// not — they apply per-subscriber on the way out).
func (cq *CompiledQuery) FilterKey() string {
	terms := make([]string, len(cq.Filters))
	for i, f := range cq.Filters {
		sc := cq.Query.Stream(f.Stream)
		terms[i] = sc.Name() + "." + sc.Attr(f.Attr).Name + "=" + f.Value.String()
	}
	sort.Strings(terms)
	return strings.Join(terms, "&")
}

// Compile resolves and safety-checks every SELECT statement of a parsed
// script. Queries that fail to resolve return errors; unsafe queries
// compile with Report.Safe == false (rejecting them is the caller's
// policy decision, as in the engine's query register).
func Compile(script *Script) ([]*CompiledQuery, error) {
	byName := make(map[string]*stream.Schema, len(script.Streams))
	for _, sc := range script.Streams {
		byName[sc.Name()] = sc
	}
	var out []*CompiledQuery
	for qi, stmt := range script.Queries {
		cq, err := compileSelect(stmt, byName, script.Schemes)
		if err != nil {
			return nil, fmt.Errorf("streamsql: query %d: %w", qi+1, err)
		}
		out = append(out, cq)
	}
	return out, nil
}

// ParseAndCompile is the one-call front door.
func ParseAndCompile(src string) ([]*CompiledQuery, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(script)
}

func compileSelect(stmt *SelectStmt, byName map[string]*stream.Schema, schemes *stream.SchemeSet) (*CompiledQuery, error) {
	if len(stmt.From) < 2 {
		return nil, fmt.Errorf("continuous join queries need at least two streams in FROM, got %d", len(stmt.From))
	}
	idx := make(map[string]int, len(stmt.From))
	schemas := make([]*stream.Schema, 0, len(stmt.From))
	for i, name := range stmt.From {
		sc, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("FROM references undeclared stream %q", name)
		}
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("stream %q appears twice in FROM (self-joins are not supported)", name)
		}
		idx[name] = i
		schemas = append(schemas, sc)
	}

	resolve := func(ref ColRef) (int, int, error) {
		si, ok := idx[ref.Stream]
		if !ok {
			return 0, 0, fmt.Errorf("reference %s: stream not in FROM", ref)
		}
		ai := schemas[si].Index(ref.Column)
		if ai < 0 {
			return 0, 0, fmt.Errorf("reference %s: no such column", ref)
		}
		return si, ai, nil
	}

	var preds []query.Predicate
	for _, jp := range stmt.Joins {
		ls, la, err := resolve(jp.Left)
		if err != nil {
			return nil, err
		}
		rs, ra, err := resolve(jp.Right)
		if err != nil {
			return nil, err
		}
		preds = append(preds, query.Predicate{Left: ls, LeftAttr: la, Right: rs, RightAttr: ra})
	}
	q, err := query.NewCJQ(schemas, preds)
	if err != nil {
		return nil, err
	}

	cq := &CompiledQuery{Stmt: stmt, Query: q}
	for _, fp := range stmt.Filters {
		si, ai, err := resolve(fp.Col)
		if err != nil {
			return nil, err
		}
		if got, want := fp.Value.Kind(), schemas[si].Attr(ai).Kind; got != want {
			return nil, fmt.Errorf("filter %s = %s: literal kind %s does not match column kind %s",
				fp.Col, fp.Value, got, want)
		}
		cq.Filters = append(cq.Filters, CompiledFilter{Stream: si, Attr: ai, Value: fp.Value})
	}
	if !stmt.Star {
		for _, c := range stmt.Columns {
			si, _, err := resolve(c)
			if err != nil {
				return nil, err
			}
			_ = si
			cq.Projection = append(cq.Projection, c.Stream+"_"+c.Column)
		}
	}
	rep, err := safety.Check(q, schemes)
	if err != nil {
		return nil, err
	}
	cq.Report = rep
	return cq, nil
}
