package streamsql

import (
	"strings"
	"testing"
)

const auctionScript = `
-- The paper's Example 1 as a script.
CREATE STREAM item (sellerid INT, itemid INT, name STRING, initialprice FLOAT);
CREATE STREAM bid (bidderid INT, itemid INT, increase FLOAT);

DECLARE SCHEME ON item (itemid);
DECLARE SCHEME ON bid (itemid);

SELECT item.itemid, bid.increase
FROM item, bid
WHERE item.itemid = bid.itemid;
`

func TestParseAuctionScript(t *testing.T) {
	script, err := Parse(auctionScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Streams) != 2 || script.Schemes.Len() != 2 || len(script.Queries) != 1 {
		t.Fatalf("streams=%d schemes=%d queries=%d",
			len(script.Streams), script.Schemes.Len(), len(script.Queries))
	}
	q := script.Queries[0]
	if q.Star || len(q.Columns) != 2 || len(q.From) != 2 || len(q.Joins) != 1 {
		t.Fatalf("parsed select: %+v", q)
	}
	if q.Joins[0].Left.String() != "item.itemid" || q.Joins[0].Right.String() != "bid.itemid" {
		t.Fatalf("join = %+v", q.Joins[0])
	}
	if got := script.Schemes.ForStream("item")[0].String(); got != "item(_, +, _, _)" {
		t.Fatalf("item scheme = %s", got)
	}
}

func TestCompileAuctionSafe(t *testing.T) {
	cqs, err := ParseAndCompile(auctionScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqs) != 1 {
		t.Fatalf("compiled %d queries", len(cqs))
	}
	cq := cqs[0]
	if !cq.Report.Safe {
		t.Fatalf("auction query must be safe:\n%s", cq.Report.Explain(cq.Query))
	}
	if len(cq.Projection) != 2 || cq.Projection[0] != "item_itemid" || cq.Projection[1] != "bid_increase" {
		t.Fatalf("projection = %v", cq.Projection)
	}
}

func TestCompileUnsafeWithoutSchemes(t *testing.T) {
	src := strings.ReplaceAll(auctionScript, "DECLARE SCHEME ON item (itemid);", "")
	cqs, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	if cqs[0].Report.Safe {
		t.Fatal("query must be unsafe without the item scheme")
	}
}

func TestParseMaskScheme(t *testing.T) {
	script, err := Parse(`
CREATE STREAM s (a INT, b INT, ts INT);
CREATE STREAM r (a INT, ts INT);
DECLARE SCHEME s (_, +, <);
DECLARE PUNCTUATION SCHEME r (+, _);
SELECT * FROM s, r WHERE s.a = r.a;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := script.Schemes.ForStream("s")[0]
	if s.String() != "s(_, +, <)" {
		t.Fatalf("mask scheme = %s", s)
	}
	if s.OrderedIndex() != 2 {
		t.Fatalf("ordered index = %d", s.OrderedIndex())
	}
	if script.Schemes.ForStream("r")[0].String() != "r(+, _)" {
		t.Fatalf("r scheme = %s", script.Schemes.ForStream("r")[0])
	}
}

func TestParseOrderedNamedScheme(t *testing.T) {
	script, err := Parse(`
CREATE STREAM pkt (src INT, seq INT, bytes INT);
CREATE STREAM conn (src INT, seq INT);
DECLARE SCHEME ON pkt (src, seq ORDERED);
SELECT * FROM pkt, conn WHERE pkt.src = conn.src AND pkt.seq = conn.seq;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := script.Schemes.ForStream("pkt")[0]
	if s.String() != "pkt(+, <, _)" {
		t.Fatalf("scheme = %s", s)
	}
}

func TestFiltersAndLiterals(t *testing.T) {
	cqs, err := ParseAndCompile(`
CREATE STREAM ev (k INT, tag INT, label STRING, score FLOAT);
CREATE STREAM ref (k INT);
DECLARE SCHEME ON ev (k);
DECLARE SCHEME ON ref (k);
SELECT ev.k FROM ev, ref
WHERE ev.k = ref.k AND ev.tag = 1 AND ev.label = 'hot' AND ev.score = 0.5;
`)
	if err != nil {
		t.Fatal(err)
	}
	cq := cqs[0]
	if len(cq.Filters) != 3 {
		t.Fatalf("filters = %+v", cq.Filters)
	}
	if cq.Filters[0].Value.AsInt() != 1 {
		t.Fatalf("int filter = %s", cq.Filters[0].Value)
	}
	if cq.Filters[1].Value.AsString() != "hot" {
		t.Fatalf("string filter = %s", cq.Filters[1].Value)
	}
	if cq.Filters[2].Value.AsFloat() != 0.5 {
		t.Fatalf("float filter = %s", cq.Filters[2].Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad statement":     `DROP STREAM x;`,
		"bad type":          `CREATE STREAM s (a DECIMAL);`,
		"missing semicolon": `CREATE STREAM s (a INT)`,
		"dup stream":        `CREATE STREAM s (a INT); CREATE STREAM s (a INT);`,
		"scheme undeclared": `DECLARE SCHEME ON s (a);`,
		"scheme bad column": `CREATE STREAM s (a INT); DECLARE SCHEME ON s (b);`,
		"mask too long":     `CREATE STREAM s (a INT); DECLARE SCHEME s (+, _);`,
		"mask too short":    `CREATE STREAM s (a INT, b INT); DECLARE SCHEME s (+);`,
		"two ordered":       `CREATE STREAM s (a INT, b INT); DECLARE SCHEME s (<, <);`,
		"ordered string":    `CREATE STREAM s (a STRING, b INT); DECLARE SCHEME s (<, _);`,
		"unterminated str":  `CREATE STREAM s (a INT); SELECT s.a FROM s, s WHERE s.a = 'x;`,
		"bad char":          `CREATE STREAM s (a INT); @`,
		"empty mask slot":   `CREATE STREAM s (a INT); DECLARE SCHEME s (?);`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected a parse error", name)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"one stream": `
CREATE STREAM s (a INT);
SELECT * FROM s;`,
		"unknown from": `
CREATE STREAM s (a INT);
SELECT * FROM s, t WHERE s.a = t.a;`,
		"self join": `
CREATE STREAM s (a INT);
SELECT * FROM s, s WHERE s.a = s.a;`,
		"unknown column": `
CREATE STREAM s (a INT);
CREATE STREAM t (a INT);
SELECT * FROM s, t WHERE s.z = t.a;`,
		"cross product": `
CREATE STREAM s (a INT);
CREATE STREAM t (a INT);
SELECT * FROM s, t;`,
		"filter kind mismatch": `
CREATE STREAM s (a INT);
CREATE STREAM t (a INT);
SELECT * FROM s, t WHERE s.a = t.a AND s.a = 'x';`,
		"projection unknown": `
CREATE STREAM s (a INT);
CREATE STREAM t (a INT);
SELECT s.z FROM s, t WHERE s.a = t.a;`,
	}
	for name, src := range cases {
		script, err := Parse(src)
		if err != nil {
			continue // parse-level rejection also counts
		}
		if _, err := Compile(script); err == nil {
			t.Errorf("%s: expected a compile error", name)
		}
	}
}

// TestThreeWayFigure5SQL expresses the paper's Figure 5 in SQL and checks
// the verdict matches the by-hand construction.
func TestThreeWayFigure5SQL(t *testing.T) {
	cqs, err := ParseAndCompile(`
CREATE STREAM s1 (a INT, b INT);
CREATE STREAM s2 (b INT, c INT);
CREATE STREAM s3 (a INT, c INT);
DECLARE SCHEME s1 (_, +);
DECLARE SCHEME s2 (_, +);
DECLARE SCHEME s3 (+, _);
SELECT * FROM s1, s2, s3
WHERE s1.b = s2.b AND s2.c = s3.c AND s3.a = s1.a;
`)
	if err != nil {
		t.Fatal(err)
	}
	if !cqs[0].Report.Safe {
		t.Fatal("Figure 5 must be safe")
	}
	// Dropping s3's scheme makes it unsafe.
	cqs, err = ParseAndCompile(`
CREATE STREAM s1 (a INT, b INT);
CREATE STREAM s2 (b INT, c INT);
CREATE STREAM s3 (a INT, c INT);
DECLARE SCHEME s1 (_, +);
DECLARE SCHEME s2 (_, +);
SELECT * FROM s1, s2, s3
WHERE s1.b = s2.b AND s2.c = s3.c AND s3.a = s1.a;
`)
	if err != nil {
		t.Fatal(err)
	}
	if cqs[0].Report.Safe {
		t.Fatal("must be unsafe without s3's scheme")
	}
}

// TestWatermarkSQL end-to-end: the sensor watermark scenario via SQL.
func TestWatermarkSQL(t *testing.T) {
	cqs, err := ParseAndCompile(`
CREATE STREAM temp (epoch INT, celsius FLOAT);
CREATE STREAM humid (epoch INT, percent FLOAT);
DECLARE SCHEME ON temp (epoch ORDERED);
DECLARE SCHEME ON humid (epoch ORDERED);
SELECT temp.epoch, temp.celsius, humid.percent
FROM temp, humid WHERE temp.epoch = humid.epoch;
`)
	if err != nil {
		t.Fatal(err)
	}
	if !cqs[0].Report.Safe {
		t.Fatalf("watermark join must be safe:\n%s", cqs[0].Report.Explain(cqs[0].Query))
	}
	useful := cqs[0].Report.UsefulSchemes
	if len(useful) != 2 {
		t.Fatalf("useful schemes = %v", useful)
	}
	for _, s := range useful {
		if s.OrderedIndex() != 0 {
			t.Fatalf("scheme %s should be ordered on epoch", s)
		}
	}
}
