// Package streamsql is a SQL-style front end for continuous join queries
// — the paper's future-work item (iv) ("supporting the safety checking of
// an arbitrary SQL-style streaming query") for the select-from-where
// fragment the theory covers. A script declares streams and punctuation
// schemes, then registers continuous queries:
//
//	CREATE STREAM item (sellerid INT, itemid INT, name STRING, initialprice FLOAT);
//	CREATE STREAM bid (bidderid INT, itemid INT, increase FLOAT);
//
//	DECLARE SCHEME ON item (itemid);            -- punctuations on item.itemid
//	DECLARE SCHEME ON bid (itemid);             -- "auction closed"
//	DECLARE SCHEME ON pkt (src, seq ORDERED);   -- watermark-style scheme
//
//	SELECT item.itemid, bid.increase
//	FROM item, bid
//	WHERE item.itemid = bid.itemid AND bid.increase = 5;
//
// Equality predicates between two streams become join predicates;
// predicates against literals become per-stream selection filters; the
// select list becomes a projection over the join output. Compile checks
// every query's safety against the declared schemes.
package streamsql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , ; . = * < _ +
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer produces tokens from a script. SQL comments (-- to end of line)
// are skipped; keywords are recognized later, case-insensitively.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(line, col int, format string, args ...interface{}) error {
	return fmt.Errorf("streamsql: line %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.pos++
			l.line++
			l.col = 1
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
			l.col++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

scan:
	startLine, startCol := l.line, l.col
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
			l.col++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: startLine, col: startCol}, nil
	case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
		start := l.pos
		l.pos++
		l.col++
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' && !seenDot {
				seenDot = true
			} else if d < '0' || d > '9' {
				break
			}
			l.pos++
			l.col++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: startLine, col: startCol}, nil
	case c == '\'':
		l.pos++
		l.col++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(startLine, startCol, "unterminated string literal")
			}
			d := l.src[l.pos]
			l.pos++
			l.col++
			if d == '\'' {
				// '' escapes a quote.
				if l.pos < len(l.src) && l.src[l.pos] == '\'' {
					b.WriteByte('\'')
					l.pos++
					l.col++
					continue
				}
				return token{kind: tokString, text: b.String(), line: startLine, col: startCol}, nil
			}
			b.WriteByte(d)
		}
	case strings.ContainsRune("(),;.=*<_+", rune(c)):
		l.pos++
		l.col++
		return token{kind: tokSymbol, text: string(c), line: startLine, col: startCol}, nil
	default:
		return token{}, l.errf(startLine, startCol, "unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole script.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
